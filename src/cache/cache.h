/**
 * @file
 * The PE-local cache (sections 3.2 and 3.4).
 *
 * Local memory is implemented as a cache over central memory.  Private
 * variables and read-only shared data (program text) are cacheable;
 * read-write shared data must not be cached, or stale copies would
 * violate the serialization principle.  The paper chooses a write-back
 * update policy -- writes are not written through; dirty words are
 * written to central memory on eviction -- and adds two
 * explicitly-requested operations:
 *
 *   release -- mark entries available *without* a central-memory
 *              update, for virtual addresses that will no longer be
 *              referenced (e.g. block-scoped private variables at block
 *              exit), reducing write-back traffic at task switches;
 *   flush   -- force a write-back of cached values, needed before a
 *              blocked task is rescheduled on a different PE and in the
 *              share/re-privatize protocol of section 3.4.
 *
 * Both operate on an address range ("segment level") or the whole
 * cache.  Dirty-word write-backs are returned to the caller (the PE
 * model), which turns them into pipelined store messages -- "cache
 * generated traffic can always be pipelined".
 */

#ifndef ULTRA_CACHE_CACHE_H
#define ULTRA_CACHE_CACHE_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace ultra::cache
{

/** Geometry and policy of one PE's cache. */
struct CacheConfig
{
    std::uint32_t numSets = 64;     //!< power of two
    std::uint32_t associativity = 2;
    std::uint32_t blockWords = 4;   //!< power of two
};

/** One dirty word to be written back to central memory. */
struct WriteBack
{
    Addr vaddr;
    Word value;
};

/** Statistics for one cache. */
struct CacheStats
{
    std::uint64_t readHits = 0;
    std::uint64_t readMisses = 0;
    std::uint64_t writeHits = 0;
    std::uint64_t writeMisses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t wordsWrittenBack = 0;
    std::uint64_t releasedDirtyWords = 0; //!< write-backs saved by release
    std::uint64_t flushedWords = 0;

    double
    hitRate() const
    {
        const std::uint64_t total =
            readHits + readMisses + writeHits + writeMisses;
        return total ? static_cast<double>(readHits + writeHits) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/** Set-associative write-back cache with release and flush. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /** Result of a read or write probe. */
    struct Access
    {
        bool hit = false;
        Word value = 0; //!< reads: the cached value when hit
        /** Dirty words evicted to make room (misses only). */
        std::vector<WriteBack> writeBacks;
    };

    /**
     * Read @p vaddr.  On a miss the caller must fetch the block from
     * central memory and installBlock() it; the returned write-backs
     * (from the evicted victim) must be sent to central memory.
     */
    Access read(Addr vaddr);

    /**
     * Write @p value to @p vaddr.  Write-allocate: on a miss the caller
     * fetches and installs the block, then re-issues the write.
     */
    Access write(Addr vaddr, Word value);

    /** Install a block fetched from central memory (block-aligned
     *  @p base; @p words has blockWords entries). */
    void installBlock(Addr base, const Word *words);

    /** Mark entries overlapping [lo, hi] available without write-back. */
    void release(Addr lo, Addr hi);

    /** Release the entire cache. */
    void releaseAll();

    /** Write back (and keep, now clean) dirty words in [lo, hi]. */
    std::vector<WriteBack> flush(Addr lo, Addr hi);

    /** Flush the entire cache. */
    std::vector<WriteBack> flushAll();

    /** True when @p vaddr is currently cached. */
    bool contains(Addr vaddr) const;

    /** Non-counting lookup (no statistics, no LRU update). */
    bool probe(Addr vaddr, Word *value_out) const;

    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = CacheStats{}; }
    const CacheConfig &config() const { return cfg_; }

  private:
    struct Line
    {
        bool valid = false;
        Addr base = 0; //!< block-aligned virtual address
        std::uint64_t lastUse = 0;
        std::vector<Word> data;
        std::vector<bool> dirty;
    };

    Addr blockBase(Addr vaddr) const;
    std::uint32_t setOf(Addr vaddr) const;
    Line *find(Addr vaddr);
    const Line *find(Addr vaddr) const;
    /** Victim line in the set of @p vaddr; collects its dirty words. */
    Line &evictFor(Addr vaddr, std::vector<WriteBack> &write_backs);
    void collectDirty(Line &line, std::vector<WriteBack> &out,
                      bool mark_clean);

    CacheConfig cfg_;
    std::vector<Line> lines_; //!< numSets * associativity
    CacheStats stats_;
    std::uint64_t useClock_ = 0;
};

} // namespace ultra::cache

#endif // ULTRA_CACHE_CACHE_H
