#include "pni.h"

#include <algorithm>

#include "check/phase_check.h"
#include "common/log.h"
#include "obs/registry.h"

namespace ultra::net
{

PniArray::PniArray(const PniConfig &cfg, Network &network,
                   const mem::AddressHash &hash)
    : cfg_(cfg), network_(network), hash_(hash),
      pes_(network.config().numPorts), pendingActive_(1)
{
    network_.setDeliverCallback(
        [this](PEId pe, std::uint64_t ticket, Word value) {
            onDeliver(pe, ticket, value);
        });
    network_.setKillCallback([this](PEId pe, std::uint64_t ticket) {
        onKill(pe, ticket);
    });
}

void
PniArray::setShardMap(unsigned shards, std::vector<unsigned> shardOfPe)
{
    ULTRA_ASSERT(shards >= 1);
    ULTRA_ASSERT(shardOfPe.empty() || shardOfPe.size() == pes_.size());
    // Re-stage activations staged under the old map: a finished run's
    // final network tick can leave delivery-triggered activations that
    // tick() has not merged yet.
    std::vector<PEId> staged;
    for (std::vector<PEId> &pending : pendingActive_) {
        staged.insert(staged.end(), pending.begin(), pending.end());
        pending.clear();
    }
    pendingActive_.resize(shards);
    shardOfPe_ = std::move(shardOfPe);
    for (PEId pe : staged) {
        const unsigned shard = shardOfPe_.empty() ? 0 : shardOfPe_[pe];
        pendingActive_[shard].push_back(pe);
    }
}

void
PniArray::activate(PEId pe)
{
    PeState &state = pes_[pe];
    if (!state.inActiveList) {
        state.inActiveList = true;
        const unsigned shard = shardOfPe_.empty() ? 0 : shardOfPe_[pe];
        pendingActive_[shard].push_back(pe);
    }
}

std::uint64_t
PniArray::request(PEId pe, Op op, Addr vaddr, Word data)
{
    ULTRA_ASSERT(pe < pes_.size());
    // Contract: everything below is owned by pe's shard (DESIGN.md).
    ULTRA_CHECK_COMPUTE_WRITE("net.pni.request", pe);
    PeState &state = pes_[pe];
    QueuedReq req;
    req.ticket = state.nextTicket++;
    req.op = op;
    req.paddr = hash_.toPhysical(vaddr);
    req.data = data;
    req.queuedAt = network_.now();
    req.notBefore = 0;
    state.issueQueue.push_back(req);
    activate(pe);
    ++state.requested;
    if (requestProbe_)
        requestProbe_(pe, op, vaddr, data);
    return req.ticket;
}

void
PniArray::tick()
{
    ULTRA_CHECK_COMMIT_ONLY("net.pni.tick");
    // Merge activations staged by the compute phase, then sort so the
    // network sees injection attempts in PE-id order regardless of how
    // many shards staged them -- the keystone of N-thread determinism.
    for (std::vector<PEId> &pending : pendingActive_) {
        activePes_.insert(activePes_.end(), pending.begin(),
                          pending.end());
        pending.clear();
    }
    std::sort(activePes_.begin(), activePes_.end());

    const Cycle now = network_.now();
    std::size_t keep = 0;
    for (std::size_t i = 0; i < activePes_.size(); ++i) {
        const PEId pe = activePes_[i];
        PeState &state = pes_[pe];

        // FIFO issue: push the head into the network while constraints
        // allow.  A PE has at most d injection links, so a handful of
        // issues per cycle at most; the loop exits on the first stall.
        while (!state.issueQueue.empty()) {
            QueuedReq &head = state.issueQueue.front();
            if (head.notBefore > now)
                break;
            if (cfg_.maxOutstanding != 0 &&
                state.outstanding.size() >= cfg_.maxOutstanding) {
                break;
            }
            if (cfg_.enforceUniqueLocation &&
                state.outstandingAddrs.count(head.paddr)) {
                break;
            }
            if (!network_.tryInject(pe, head.op, head.paddr, head.data,
                                    head.ticket, head.queuedAt)) {
                break;
            }
            stats_.issueWait.add(
                static_cast<double>(now - head.queuedAt));
            state.outstandingAddrs.insert(head.paddr);
            state.outstanding.emplace(head.ticket, head);
            state.issueQueue.pop_front();
        }

        if (state.issueQueue.empty()) {
            state.inActiveList = false;
        } else {
            activePes_[keep++] = pe;
        }
    }
    activePes_.resize(keep);
}

void
PniArray::resetStats()
{
    stats_ = PniStats{};
    for (PeState &state : pes_)
        state.requested = 0;
}

std::uint64_t
PniArray::requestedCount() const
{
    std::uint64_t total = 0;
    for (const PeState &state : pes_)
        total += state.requested;
    return total;
}

std::size_t
PniArray::pendingCount(PEId pe) const
{
    // Uncommitted per-PE state: only pe's own shard may poll it
    // during the compute phase.
    ULTRA_CHECK_COMPUTE_READ("net.pni.pending", pe);
    const PeState &state = pes_[pe];
    return state.issueQueue.size() + state.outstanding.size();
}

std::size_t
PniArray::outstandingCount() const
{
    std::size_t total = 0;
    for (const PeState &state : pes_)
        total += state.outstanding.size();
    return total;
}

std::size_t
PniArray::queuedCount() const
{
    std::size_t total = 0;
    for (const PeState &state : pes_)
        total += state.issueQueue.size();
    return total;
}

void
PniArray::registerStats(obs::Registry &registry,
                        const std::string &prefix) const
{
    registry.addScalar(prefix + ".requested",
                       [this] {
                           return static_cast<double>(requestedCount());
                       },
                       "requests enqueued by PEs");
    registry.addScalar(prefix + ".completed",
                       [this] {
                           return static_cast<double>(stats_.completed);
                       },
                       "requests completed");
    registry.addScalar(prefix + ".retries",
                       [this] {
                           return static_cast<double>(stats_.retries);
                       },
                       "Burroughs-mode re-issues");
    registry.addScalar(prefix + ".outstanding",
                       [this] {
                           return static_cast<double>(
                               outstandingCount());
                       },
                       "requests in the network (gauge)");
    registry.addScalar(prefix + ".issue_queued",
                       [this] {
                           return static_cast<double>(queuedCount());
                       },
                       "requests awaiting issue (gauge)");
    registry.addAccumulator(prefix + ".access_time",
                            &stats_.accessTime,
                            "request() -> completion, cycles");
    registry.addAccumulator(prefix + ".issue_wait", &stats_.issueWait,
                            "request() -> network acceptance, cycles");
}

void
PniArray::onDeliver(PEId pe, std::uint64_t ticket, Word value)
{
    ULTRA_CHECK_COMMIT_ONLY("net.pni.deliver");
    PeState &state = pes_[pe];
    auto it = state.outstanding.find(ticket);
    ULTRA_ASSERT(it != state.outstanding.end(),
                 "reply for unknown ticket ", ticket, " at PE ", pe);
    const QueuedReq req = it->second;
    state.outstanding.erase(it);
    state.outstandingAddrs.erase(req.paddr);
    ++stats_.completed;
    stats_.accessTime.add(
        static_cast<double>(network_.now() - req.queuedAt));
    // The issue queue may have been blocked on this completion.
    if (!state.issueQueue.empty())
        activate(pe);
    if (completeFn_)
        completeFn_(pe, ticket, value);
}

void
PniArray::onKill(PEId pe, std::uint64_t ticket)
{
    ULTRA_CHECK_COMMIT_ONLY("net.pni.kill");
    PeState &state = pes_[pe];
    auto it = state.outstanding.find(ticket);
    ULTRA_ASSERT(it != state.outstanding.end(),
                 "kill for unknown ticket ", ticket, " at PE ", pe);
    QueuedReq req = it->second;
    state.outstanding.erase(it);
    state.outstandingAddrs.erase(req.paddr);
    req.notBefore = network_.now() + cfg_.killRetryDelay;
    state.issueQueue.push_front(req);
    activate(pe);
    ++stats_.retries;
}

} // namespace ultra::net
