/**
 * @file
 * Cycle-level model of the enhanced VLSI systolic ToMM queue
 * (section 3.3.1, Figure 4; after Guibas and Liang).
 *
 * Items enter the middle column at the bottom, climb past occupied slots
 * in the right column, and hop right into the first empty slot; the
 * right column shifts down, exiting at the bottom.  Comparison logic
 * between the right two columns matches a climbing item against the
 * descending entries; a matched item moves to the left "match column"
 * and thereafter descends in lockstep with its partner so the combined
 * pair exits simultaneously into the combining unit.
 *
 * The paper's observations, verified by the test suite:
 *   1. entries proceed in FIFO order (given the paper's discipline that
 *      the number of cycles between successive insertions is even),
 *   2. one item exits per cycle while nonempty and the receiver is
 *      ready,
 *   3. one item can be inserted per cycle while not full,
 *   4. items are not delayed when the queue is empty.
 *
 * This class models the *hardware structure*; the behavioural simulator
 * uses the abstract OutQueue, and tests check the two agree on FIFO
 * order and combining opportunities.
 */

#ifndef ULTRA_NET_SYSTOLIC_QUEUE_H
#define ULTRA_NET_SYSTOLIC_QUEUE_H

#include <cstdint>
#include <optional>
#include <vector>

namespace ultra::net
{

/** One slot's payload in the systolic queue model. */
struct SystolicItem
{
    std::uint64_t key = 0;   //!< match key (function, MM, address)
    std::uint64_t value = 0; //!< payload (e.g. the F&A increment)
    std::uint64_t seq = 0;   //!< insertion sequence number (for checks)
};

/** Three-column systolic queue with combining. */
class SystolicQueue
{
  public:
    /**
     * @param height     Slots per column.
     * @param combining  When false the match column is unused and the
     *                   structure is the plain Guibas-Liang queue.
     */
    explicit SystolicQueue(unsigned height, bool combining = true);

    /** Result of one clock. */
    struct StepResult
    {
        /** Item leaving the bottom of the right column, if any. */
        std::optional<SystolicItem> exited;
        /** Matched partner leaving the match column with it, if any. */
        std::optional<SystolicItem> partner;
        /** True when the input item was accepted this cycle. */
        bool accepted = false;
    };

    /**
     * Advance one cycle.
     * @param input          Item to insert this cycle (if any).
     * @param receiver_ready Whether the downstream can accept an exit.
     */
    StepResult step(const std::optional<SystolicItem> &input,
                    bool receiver_ready);

    /** Number of items currently inside the structure. */
    std::size_t occupancy() const { return occupancy_; }
    bool empty() const { return occupancy_ == 0; }
    unsigned height() const { return height_; }

  private:
    struct Slot
    {
        bool full = false;
        SystolicItem item;
    };

    unsigned height_;
    bool combining_;
    std::vector<Slot> matchCol_;
    std::vector<Slot> middleCol_;
    std::vector<Slot> rightCol_;
    std::size_t occupancy_ = 0;
};

} // namespace ultra::net

#endif // ULTRA_NET_SYSTOLIC_QUEUE_H
