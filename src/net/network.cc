#include "network.h"

#include <algorithm>
#include <sstream>

#include "check/phase_check.h"
#include "common/log.h"
#include "net/combining.h"
#include "obs/event_trace.h"
#include "obs/latency.h"
#include "obs/registry.h"
#include "par/tick_engine.h"
#include "prof/profiler.h"

namespace ultra::net
{

std::uint32_t
NetSimConfig::packetsFor(Op op, bool is_reply) const
{
    if (sizing == PacketSizing::Uniform)
        return m;
    const bool has_data =
        is_reply ? mem::opReturnsData(op) : mem::opCarriesData(op);
    return has_data ? dataPackets : 1;
}

bool
NetSimConfig::valid() const
{
    if (!isPowerOfTwo(numPorts) || !isPowerOfTwo(k) || k < 2)
        return false;
    if (m == 0 || d == 0 || dataPackets == 0 || maxCombinesPerVisit == 0)
        return false;
    if (shardGroupTarget == 0)
        return false;
    // numPorts must be a power of k.
    std::uint64_t reach = 1;
    while (reach < numPorts)
        reach *= k;
    if (reach != numPorts)
        return false;
    // Finite queues must hold at least one maximal message.
    const std::uint32_t max_msg =
        sizing == PacketSizing::Uniform ? m : dataPackets;
    if (queueCapacityPackets != 0 && queueCapacityPackets < max_msg)
        return false;
    if (mmPendingCapacityPackets != 0 &&
        mmPendingCapacityPackets < max_msg) {
        return false;
    }
    return true;
}

Network::Node::Node(unsigned k, std::uint32_t qcap, std::uint32_t wbcap)
    : wb(wbcap)
{
    fwd.reserve(k);
    rev.reserve(k);
    for (unsigned i = 0; i < k; ++i) {
        fwd.emplace_back(qcap);
        rev.emplace_back(qcap);
    }
}

Network::Network(const NetSimConfig &cfg, mem::MemorySystem &memory)
    : cfg_(cfg), topo_(cfg.numPorts, cfg.k), memory_(memory)
{
    ULTRA_ASSERT(cfg.valid(), "invalid network configuration");
    ULTRA_ASSERT(memory.config().numModules == cfg.numPorts,
                 "memory system must have one module per port");

    // In Burroughs (kill-on-conflict) mode there is no queueing and no
    // backpressure; queues act as single-message staging slots.
    const std::uint32_t qcap =
        cfg_.burroughsKill ? 0 : cfg_.queueCapacityPackets;
    const std::uint32_t mmcap =
        cfg_.burroughsKill ? 0 : cfg_.mmPendingCapacityPackets;

    stats_.combinesPerStage.assign(topo_.stages(), 0);

    copies_.resize(cfg_.d);
    for (unsigned c = 0; c < cfg_.d; ++c)
        copies_[c].index = c;
    for (auto &copy : copies_) {
        copy.stage.resize(topo_.stages());
        for (auto &stage : copy.stage) {
            stage.reserve(topo_.switchesPerStage());
            for (std::uint32_t i = 0; i < topo_.switchesPerStage(); ++i)
                stage.emplace_back(cfg_.k, qcap, cfg_.waitBufferCapacity);
        }
        copy.peLinkFreeAt.assign(cfg_.numPorts, 0);
        copy.mni.reserve(cfg_.numPorts);
        for (std::uint32_t i = 0; i < cfg_.numPorts; ++i)
            copy.mni.emplace_back(mmcap);
    }
    nextCopy_.assign(cfg_.numPorts, 0);
    injectStates_.resize(cfg_.numPorts);

    // The unit partition is fixed by the topology (never by the thread
    // count); each unit gets its own message pool on an interleaved id
    // stream so allocation during the parallel arrival phase touches no
    // shared state and yields identical ids for any --threads N.
    plan_ = par::StageColumnPlan::build(
        cfg_.d, topo_.stages(), topo_.switchesPerStage(),
        cfg_.shardGroupTarget);
    const std::size_t n_units = plan_.units();
    units_.reserve(n_units);
    for (std::size_t u = 0; u < n_units; ++u) {
        Unit unit;
        unit.copy = plan_.copyOf(u);
        unit.stage = plan_.stageOf(u);
        unit.cols = plan_.columnsOf(u);
        unit.pool = MessagePool(u + 1, n_units,
                                static_cast<std::uint32_t>(u));
        // Pre-size the staging arenas once so the per-tick clear()s
        // recycle capacity instead of reallocating in the hot path;
        // sized to the unit's column count (the natural upper bound on
        // per-tick activity for the list-shaped staging).
        const std::size_t n_cols = unit.cols.size();
        unit.pool.reserve(64);
        unit.active.reserve(n_cols);
        unit.queueLenSamples.reserve(n_cols * cfg_.k);
        unit.dead.reserve(n_cols);
        unit.kills.reserve(cfg_.burroughsKill ? n_cols * cfg_.k : 0);
        unit.matchScratch.reserve(8);
        unit.fwdPull.reserve(n_cols * cfg_.k);
        unit.revPull.reserve(n_cols * cfg_.k);
        unit.departWaits.reserve(n_cols * cfg_.k);
        units_.push_back(std::move(unit));
    }
    unitShards_ = par::ShardPlan::contiguous(n_units, 1);
    departShards_ = par::ShardPlan::contiguous(
        static_cast<std::size_t>(cfg_.d) * plan_.groupsPerStage(), 1);
    mergeLen_.assign(n_units, 0);

    // Bind every queue and wait buffer to its owning unit for the
    // phase-contract checker, and every inter-stage queue to its
    // *departure* owner — the unit of the next-stage switch its output
    // wire feeds, which is the unit allowed to pull its head during
    // the parallel departure window.  Final-stage ToMM ports and
    // stage-0 ToPE ports depart in sequential sub-phases and get no
    // departure owner.
    for (auto &copy : copies_) {
        for (unsigned s = 0; s < topo_.stages(); ++s) {
            for (std::uint32_t idx = 0; idx < topo_.switchesPerStage();
                 ++idx) {
                const std::size_t u =
                    plan_.unitOf(copy.index, s, idx);
                Node &node = copy.stage[s][idx];
                for (unsigned p = 0; p < cfg_.k; ++p) {
                    node.fwd[p].queue.setCheckOwner(u);
                    node.rev[p].queue.setCheckOwner(u);
                    const std::uint32_t line = topo_.lineFrom(idx, p);
                    if (s + 1 < topo_.stages()) {
                        const auto next = topo_.intoStage(line, s + 1);
                        node.fwd[p].queue.setDepartOwner(
                            plan_.unitOf(copy.index, s + 1, next.sw));
                    }
                    if (s > 0) {
                        const std::uint32_t prev_idx =
                            topo_.unshuffle(line) >> log2Exact(cfg_.k);
                        node.rev[p].queue.setDepartOwner(
                            plan_.unitOf(copy.index, s - 1, prev_idx));
                    }
                }
                node.wb.setCheckOwner(u);
            }
        }
        // MNI pending queues are unit-less: sequential-phase only.
    }
}

Network::~Network() = default;

void
Network::setTickEngine(par::TickEngine *engine)
{
    engine_ = engine;
    const unsigned threads = engine != nullptr ? engine->threads() : 1;
    unitShards_ = par::ShardPlan::contiguous(units_.size(), threads);
    std::vector<unsigned> shard_of(units_.size(), 0);
    for (std::size_t u = 0; u < units_.size(); ++u)
        shard_of[u] = unitShards_.shardOf(u);
    ULTRA_CHECK_SET_NET_OWNERS(threads, std::move(shard_of));
    (void)shard_of;

    // The departure window processes one stage at a time, so its
    // shard plan partitions (copy, group) slots rather than whole
    // units: unit u is worked by the shard owning slot
    // copy(u) * groups + group(u), whatever u's stage.
    const unsigned groups = plan_.groupsPerStage();
    departShards_ = par::ShardPlan::contiguous(
        static_cast<std::size_t>(cfg_.d) * groups, threads);
    std::vector<unsigned> depart_shard_of(units_.size(), 0);
    for (std::size_t u = 0; u < units_.size(); ++u) {
        depart_shard_of[u] = departShards_.shardOf(
            static_cast<std::size_t>(plan_.copyOf(u)) * groups +
            u % groups);
    }
    ULTRA_CHECK_SET_NET_DEPART_OWNERS(threads,
                                      std::move(depart_shard_of));
    (void)depart_shard_of;
}

void
Network::setProfiler(prof::Profiler *prof)
{
    prof_ = prof;
    if (prof == nullptr)
        return;
    const unsigned groups = plan_.groupsPerStage();
    prof->configureUnits(static_cast<std::uint32_t>(units_.size()));
    for (std::size_t u = 0; u < units_.size(); ++u) {
        prof->setUnitGeometry(static_cast<std::uint32_t>(u),
                              units_[u].copy, units_[u].stage,
                              static_cast<unsigned>(u % groups));
    }
}

std::size_t
Network::inFlight() const
{
    std::size_t live = 0;
    for (const Unit &unit : units_)
        live += unit.pool.liveCount();
    return live;
}

std::vector<MessagePool::Audit>
Network::poolAudits() const
{
    std::vector<MessagePool::Audit> audits;
    audits.reserve(units_.size());
    for (const Unit &unit : units_)
        audits.push_back(unit.pool.audit());
    return audits;
}

void
Network::activateNode(Copy &copy, unsigned s, std::uint32_t idx)
{
    Node &node = copy.stage[s][idx];
    if (!node.inList) {
        node.inList = true;
        units_[plan_.unitOf(copy.index, s, idx)].active.push_back(idx);
    }
}

void
Network::activateMni(Copy &copy, MMId mm)
{
    MniState &mni = copy.mni[mm];
    mni.active = true;
    if (!mni.inList) {
        mni.inList = true;
        copy.activeMnis.push_back(mm);
    }
}

void
Network::stageInstant(Unit &unit, std::uint32_t track, std::uint32_t tid,
                      const char *name, std::uint64_t id,
                      std::uint64_t link)
{
    unit.traces.push_back({track, tid, name, now_, id, link});
}

void
Network::stageComplete(Unit &unit, std::uint32_t track, std::uint32_t tid,
                       const char *name, Cycle dur, std::uint64_t id)
{
    unit.traces.push_back({track, tid, name, now_, id, 0, dur, true});
}

bool
Network::tryInject(PEId pe, Op op, Addr paddr, Word data,
                   std::uint64_t tag, Cycle queued_at)
{
    // Injection mutates switch queues: sequential-phase only (issued by
    // PniArray::tick, never by a compute-phase shard).
    ULTRA_CHECK_COMMIT_ONLY("net.network.inject");
    ULTRA_ASSERT(pe < cfg_.numPorts);
    const MMId dest = memory_.moduleOf(paddr);
    const std::uint32_t packets = cfg_.packetsFor(op, false);
    const OmegaTopology::Port entry = topo_.intoStage(pe, 0);
    const unsigned out_port = topo_.routeDigit(dest, 0);

    if (cfg_.idealParacomputer) {
        // Section 2.1: simultaneous access in a single cycle; the
        // serialization principle is realized by executing requests in
        // injection order at the next tick.
        Message *msg =
            units_[plan_.unitOf(0, 0, entry.sw)].pool.alloc();
        msg->op = op;
        msg->paddr = paddr;
        msg->data = data;
        msg->origin = pe;
        msg->dest = dest;
        msg->packets = packets;
        msg->tag = tag;
        msg->injectedAt = now_;
        // Ideal mode bypasses every stage the observatory describes;
        // leave such messages unobserved.
        idealPending_.push_back({msg, now_ + 1});
        ++stats_.injected;
        if (trace_)
            trace_->instant(peTrack_, pe, "inject", now_, msg->id);
        return true;
    }

    InjectState &inj = injectStates_[pe];
    for (unsigned attempt = 0; attempt < cfg_.d; ++attempt) {
        // While a space claim is open, the PE is pinned to its copy.
        const unsigned c = inj.claimId != 0
                               ? inj.copy
                               : (nextCopy_[pe] + attempt) % cfg_.d;
        Copy &copy = copies_[c];
        if (copy.peLinkFreeAt[pe] > now_) {
            if (inj.claimId != 0)
                return false;
            continue;
        }
        Node &node = copy.stage[0][entry.sw];
        OutQueue &queue = node.fwd[out_port].queue;
        if (!cfg_.burroughsKill) {
            inj.copy = c;
            if (!acquireSpace(inj.claimId, inj.claimPkts,
                              inj.claimTarget, queue, packets)) {
                return false; // claim registered; caller retries
            }
        }
        Message *msg =
            units_[plan_.unitOf(c, 0, entry.sw)].pool.alloc();
        msg->op = op;
        msg->paddr = paddr;
        msg->data = data;
        msg->origin = pe;
        msg->dest = dest;
        msg->packets = packets;
        msg->tag = tag;
        msg->injectedAt = now_;
        if (lat_)
            msg->lat = lat_->open(msg->id, queued_at, now_);
        copy.peLinkFreeAt[pe] = now_ + packets;
        node.fwdInbox.push_back({msg, now_ + 1});
        activateNode(copy, 0, entry.sw);
        nextCopy_[pe] = (c + 1) % cfg_.d;
        ++stats_.injected;
        if (trace_)
            trace_->instant(peTrack_, pe, "inject", now_, msg->id);
        return true;
    }
    return false;
}

bool
Network::acquireSpace(std::uint64_t &claim_id, std::uint32_t &claim_pkts,
                      OutQueue *&claim_target, OutQueue &target,
                      std::uint32_t pkts)
{
    if (claim_id != 0 &&
        (claim_target != &target || claim_pkts != pkts)) {
        // The head changed shape (e.g. grew by combining) or the
        // sender moved on: abandon the stale claim.
        claim_target->cancelClaim(claim_id);
        claim_id = 0;
    }
    if (claim_id == 0) {
        if (target.tryReserve(pkts))
            return true;
        claim_id = target.openClaim(pkts);
        claim_pkts = pkts;
        claim_target = &target;
    }
    if (target.claimReady(claim_id)) {
        target.consumeClaim(claim_id);
        claim_id = 0;
        return true;
    }
    return false;
}

bool
Network::tryCombine(Unit &unit, Node &node, std::uint32_t idx,
                    unsigned port, Message *msg)
{
    if (cfg_.burroughsKill || cfg_.combinePolicy == CombinePolicy::None)
        return false;
    OutQueue &queue = node.fwd[port].queue;
    if (node.wb.full())
        return false;

    const unsigned s = unit.stage;
    const std::uint32_t growth_packets =
        cfg_.sizing == PacketSizing::Uniform ? 0 : cfg_.dataPackets;

    // Scan the queue's contiguous key array first: the common miss
    // touches one cache line per few entries instead of a Message each.
    const Addr *keys = queue.keys();
    const std::size_t n = queue.sizeMessages();
    for (std::size_t i = 0; i < n; ++i) {
        if (keys[i] != msg->paddr)
            continue;
        Message *cand = queue.msgAt(i);
        if (cand->combinedAtThisQueue >= cfg_.maxCombinesPerVisit)
            continue;
        auto plan = planCombine(*cand, *msg, cfg_.combinePolicy,
                                growth_packets);
        if (!plan)
            continue;
        if (plan->growOldBy != 0 && !queue.grow(cand, plan->growOldBy))
            continue;
        cand->op = plan->newOldOp;
        cand->data = plan->newOldData;
        ++cand->combinedAtThisQueue;
        ++cand->timesCombined;
        plan->entry.waitKey = cand->id;
        plan->entry.createdAt = now_;
        if (msg->lat) {
            // The absorbed request's record parks in the wait buffer
            // until the reply fissions it back out.  noteCombined only
            // touches the record and this unit's heat cells, so it is
            // arrival-phase safe.
            lat_->noteCombined(msg->lat, s, idx, now_);
            plan->entry.lat = msg->lat;
            msg->lat = nullptr;
        }
        if (trace_) {
            stageInstant(unit, fwdTrack_[unit.copy][s],
                         traceLane(idx, port), "combine", msg->id,
                         cand->id);
        }
        node.wb.insert(plan->entry);
        queue.cancelReservation(msg->packets);
        // The absorbed message may live in another unit's pool: stage
        // the free for the merge phase.
        unit.dead.push_back(msg);
        ++unit.delta.combined;
        ++unit.delta.stageCombines;
        return true;
    }
    return false;
}

void
Network::arriveForward(Unit &unit, std::uint32_t idx, Message *msg)
{
    Copy &copy = copies_[unit.copy];
    const unsigned s = unit.stage;
    Node &node = copy.stage[s][idx];
    const unsigned port = topo_.routeDigit(msg->dest, s);
    OutPort &out = node.fwd[port];
    if (msg->lat)
        lat_->noteFwdArrive(msg->lat, s, now_);

    if (cfg_.burroughsKill) {
        // Kill-on-conflict: the output must be idle or the request dies.
        if (out.linkFreeAt > now_ || !out.queue.empty()) {
            ++unit.delta.killed;
            if (trace_)
                stageInstant(unit, peTrack_, msg->origin, "kill",
                             msg->id);
            // closeKilled, the kill callback and the pool free all
            // touch shared state: stage them for the merge phase.
            unit.kills.push_back(msg);
            return;
        }
        out.queue.enqueueUnreserved(msg);
        return;
    }

    if (tryCombine(unit, node, idx, port, msg))
        return;
    unit.queueLenSamples.push_back(
        static_cast<double>(out.queue.usedPackets()));
    out.queue.enqueue(msg);
}

void
Network::arriveReverse(Unit &unit, std::uint32_t idx, Message *msg)
{
    Copy &copy = copies_[unit.copy];
    const unsigned s = unit.stage;
    Node &node = copy.stage[s][idx];
    if (msg->lat)
        lat_->noteRevArrive(msg->lat, s, now_);

    // Fission: synthesize one reply per wait-buffer record.  Entries are
    // applied newest-first while threading the "current value": each
    // rewrite re-expresses the value an *earlier* combine should see, so
    // the reverse order reconstructs the serialization exactly (see
    // combining.h).
    const std::uint32_t packets_on_arrival = msg->packets;
    if (!node.wb.empty()) {
        unit.matchScratch.clear();
        node.wb.takeMatches(msg->requestId, unit.matchScratch);
        Word current = msg->data;
        for (std::size_t i = unit.matchScratch.size(); i-- > 0;) {
            const WaitEntry &entry = unit.matchScratch[i];
            Message *spawn = unit.pool.alloc();
            spawn->op = entry.satisfiedOp;
            spawn->isReply = true;
            spawn->paddr = msg->paddr;
            spawn->data = entry.rule == ReplyRule::Decombine
                              ? mem::decombineReply(entry.decombineOp,
                                                    current, entry.datum)
                              : entry.datum;
            spawn->origin = entry.satisfiedOrigin;
            spawn->dest = msg->dest;
            spawn->packets = cfg_.packetsFor(entry.satisfiedOp, true);
            spawn->requestId = entry.satisfiedId;
            spawn->tag = entry.satisfiedTag;
            spawn->injectedAt = entry.satisfiedInjectedAt;
            if (entry.lat) {
                spawn->lat = entry.lat;
                lat_->noteDecombine(spawn->lat, s, now_);
            }
            if (entry.rewriteReturning) {
                current = entry.rewriteDatum;
                // The returning "acknowledgement" now carries a value.
                msg->packets = std::max(
                    msg->packets, cfg_.packetsFor(Op::Load, true));
            }
            ++unit.delta.decombined;
            const unsigned sp_port =
                topo_.routeDigit(spawn->origin, s);
            if (trace_) {
                stageInstant(unit, revTrack_[unit.copy][s],
                             traceLane(idx, sp_port), "decombine",
                             spawn->id, entry.satisfiedId);
            }
            OutQueue &sp_queue = node.rev[sp_port].queue;
            if (!sp_queue.canAccept(spawn->packets))
                unit.delta.revOverflowPackets += spawn->packets;
            sp_queue.enqueueUnreserved(spawn);
        }
        msg->data = current;
    }

    const unsigned port = topo_.routeDigit(msg->origin, s);
    OutQueue &rev_queue = node.rev[port].queue;
    if (cfg_.burroughsKill) {
        rev_queue.enqueueUnreserved(msg);
    } else {
        // A rewrite may have grown the returning acknowledgement into
        // a data-carrying reply; claim the extra space (over capacity
        // if need be -- accounted as fission slack).
        if (msg->packets > packets_on_arrival) {
            const std::uint32_t extra =
                msg->packets - packets_on_arrival;
            rev_queue.reserve(extra);
            if (!rev_queue.canAccept(0))
                unit.delta.revOverflowPackets += extra;
        }
        rev_queue.enqueue(msg);
    }
}

void
Network::departForward(Copy &copy, unsigned s, std::uint32_t idx,
                       unsigned port)
{
    if (s + 1 != topo_.stages()) {
        departForwardHop(copy, s, idx, port);
        return;
    }
    Node &node = copy.stage[s][idx];
    OutPort &out = node.fwd[port];
    if (out.linkFreeAt > now_ || out.queue.empty())
        return;
    Message *msg = out.queue.head();
    const std::uint32_t line = topo_.lineFrom(idx, port);

    {
        // Final stage: the output line is the MM id.
        ULTRA_ASSERT(line == msg->dest, "routing reached MM ", line,
                     " but message is bound for ", msg->dest);
        MniState &mni = copy.mni[msg->dest];
        if (cfg_.burroughsKill) {
            if (!mni.pending.canAccept(msg->packets) &&
                !mni.pending.unbounded()) {
                out.queue.dequeue();
                ++stats_.killed;
                if (msg->lat) {
                    lat_->closeKilled(msg->lat);
                    msg->lat = nullptr;
                }
                if (trace_) {
                    trace_->instant(peTrack_, msg->origin, "kill",
                                    now_, msg->id);
                }
                if (killFn_)
                    killFn_(msg->origin, msg->tag);
                poolOf(msg).free(msg);
                return;
            }
        } else {
            if (!acquireSpace(out.claimId, out.claimPkts,
                              out.claimTarget, mni.pending,
                              msg->packets)) {
                activateMni(copy, msg->dest); // claims need pumping
                return;                       // backpressure
            }
        }
        out.queue.dequeue();
        out.linkFreeAt = now_ + msg->packets;
        if (msg->lat) {
            lat_->noteFwdDepart(msg->lat, s, idx, now_, msg->packets,
                                true);
        }
        if (trace_) {
            trace_->complete(fwdTrack_[copy.index][s],
                             traceLane(idx, port), mem::opName(msg->op),
                             now_, msg->packets, msg->id);
        }
        // The MNI may begin service only once the tail has arrived.
        mni.inbox.push_back({msg, now_ + msg->packets});
        activateMni(copy, msg->dest);
        return;
    }
}

void
Network::departForwardHop(Copy &copy, unsigned s, std::uint32_t idx,
                          unsigned port)
{
    Node &node = copy.stage[s][idx];
    OutPort &out = node.fwd[port];
    if (out.linkFreeAt > now_ || out.queue.empty())
        return;
    Message *msg = out.queue.head();
    const std::uint32_t line = topo_.lineFrom(idx, port);
    const OmegaTopology::Port next = topo_.intoStage(line, s + 1);
    Node &next_node = copy.stage[s + 1][next.sw];
    // The receiving unit: during the departure window it is the unit
    // executing this call, so observability stages into its arenas.
    Unit &runit = units_[plan_.unitOf(copy.index, s + 1, next.sw)];
    const unsigned next_port = topo_.routeDigit(msg->dest, s + 1);
    if (!cfg_.burroughsKill) {
        OutQueue &next_queue = next_node.fwd[next_port].queue;
        if (!acquireSpace(out.claimId, out.claimPkts, out.claimTarget,
                          next_queue, msg->packets)) {
            activateNode(copy, s + 1, next.sw); // claims need pumping
            return;                             // backpressure
        }
    }
    out.queue.dequeue();
    out.linkFreeAt = now_ + msg->packets;
    if (msg->lat) {
        runit.departWaits.push_back(
            {true, s, idx,
             lat_->stampFwdDepart(msg->lat, s, now_, msg->packets,
                                  false)});
    }
    if (trace_) {
        stageComplete(runit, fwdTrack_[copy.index][s],
                      traceLane(idx, port), mem::opName(msg->op),
                      msg->packets, msg->id);
    }
    next_node.fwdInbox.push_back({msg, now_ + 1});
    activateNode(copy, s + 1, next.sw);
}

void
Network::departReverse(Copy &copy, unsigned s, std::uint32_t idx,
                       unsigned port)
{
    if (s != 0) {
        departReverseHop(copy, s, idx, port);
        return;
    }
    Node &node = copy.stage[s][idx];
    OutPort &out = node.rev[port];
    if (out.linkFreeAt > now_ || out.queue.empty())
        return;
    Message *msg = out.queue.head();
    // The PE-side line of this reverse output port.
    const std::uint32_t line = topo_.unshuffle(topo_.lineFrom(idx, port));

    {
        // Deliver to the PNI once the tail arrives.
        ULTRA_ASSERT(line == msg->origin, "reply reached PE ", line,
                     " but belongs to PE ", msg->origin);
        out.queue.dequeue();
        out.linkFreeAt = now_ + msg->packets;
        if (msg->lat) {
            lat_->noteRevDepart(msg->lat, s, idx, now_, msg->packets,
                                true);
        }
        if (trace_) {
            trace_->complete(revTrack_[copy.index][s],
                             traceLane(idx, port), mem::opName(msg->op),
                             now_, msg->packets, msg->id);
        }
        deliveries_.push_back({msg, now_ + msg->packets});
        return;
    }
}

void
Network::departReverseHop(Copy &copy, unsigned s, std::uint32_t idx,
                          unsigned port)
{
    Node &node = copy.stage[s][idx];
    OutPort &out = node.rev[port];
    if (out.linkFreeAt > now_ || out.queue.empty())
        return;
    Message *msg = out.queue.head();
    // The PE-side line of this reverse output port.
    const std::uint32_t line = topo_.unshuffle(topo_.lineFrom(idx, port));
    const std::uint32_t prev_idx = line >> log2Exact(cfg_.k);
    Node &prev_node = copy.stage[s - 1][prev_idx];
    Unit &runit = units_[plan_.unitOf(copy.index, s - 1, prev_idx)];
    const unsigned prev_port = topo_.routeDigit(msg->origin, s - 1);
    if (!cfg_.burroughsKill) {
        OutQueue &prev_queue = prev_node.rev[prev_port].queue;
        if (!acquireSpace(out.claimId, out.claimPkts, out.claimTarget,
                          prev_queue, msg->packets)) {
            activateNode(copy, s - 1, prev_idx); // claims need pumping
            return;                              // backpressure
        }
    }
    out.queue.dequeue();
    out.linkFreeAt = now_ + msg->packets;
    if (msg->lat) {
        runit.departWaits.push_back(
            {false, s, idx,
             lat_->stampRevDepart(msg->lat, s, now_, msg->packets,
                                  false)});
    }
    if (trace_) {
        stageComplete(runit, revTrack_[copy.index][s],
                      traceLane(idx, port), mem::opName(msg->op),
                      msg->packets, msg->id);
    }
    prev_node.revInbox.push_back({msg, now_ + 1});
    activateNode(copy, s - 1, prev_idx);
}

void
Network::arrivalPhaseUnit(Unit &unit)
{
    Copy &copy = copies_[unit.copy];
    auto &stage_nodes = copy.stage[unit.stage];

    std::uint64_t consumed = 0; // arrivals taken (prof load counter)
    auto take_due = [&](std::vector<Arrival> &inbox, std::uint32_t idx,
                        bool forward) {
        std::size_t keep = 0;
        for (std::size_t i = 0; i < inbox.size(); ++i) {
            if (inbox[i].at <= now_) {
                ++consumed;
                if (forward)
                    arriveForward(unit, idx, inbox[i].msg);
                else
                    arriveReverse(unit, idx, inbox[i].msg);
            } else {
                inbox[keep++] = inbox[i];
            }
        }
        inbox.resize(keep);
    };

    std::size_t keep = 0;
    for (std::size_t i = 0; i < unit.active.size(); ++i) {
        const std::uint32_t idx = unit.active[i];
        Node &node = stage_nodes[idx];

        bool busy = !node.fwdInbox.empty() || !node.revInbox.empty();
        for (unsigned p = 0; p < cfg_.k && !busy; ++p) {
            busy = !node.fwd[p].queue.empty() ||
                   !node.rev[p].queue.empty();
        }
        if (!busy) {
            // Went idle after last cycle's departures; drop it.  Only
            // sequential contexts re-activate, so this prune cannot
            // race with another unit.
            node.inList = false;
            continue;
        }
        take_due(node.fwdInbox, idx, true);
        take_due(node.revInbox, idx, false);
        unit.active[keep++] = idx;
    }
    unit.active.resize(keep);
    // Canonical ascending-column order: the merge sweep then visits a
    // stage's active columns in an order independent of how they were
    // activated AND of the group partition, so downstream space
    // arbitration -- and with it every statistic -- is identical for
    // any shardGroupTarget.
    std::sort(unit.active.begin(), unit.active.end());
    // One profiler call per unit per tick; the unit's slot has a
    // single writer (whichever shard owns the unit this phase).
    if (prof_ != nullptr && consumed != 0) {
        prof_->unitMessages(
            static_cast<std::uint32_t>(&unit - units_.data()), consumed);
    }
}

void
Network::arrivalPhase()
{
    if (engine_ != nullptr && engine_->threads() > 1) {
        ULTRA_CHECK_NET_COMPUTE_BEGIN(now_);
        try {
            engine_->forEachShard([this](unsigned shard) {
                const par::ShardRange r = unitShards_.range(shard);
                for (std::size_t u = r.begin; u < r.end; ++u)
                    arrivalPhaseUnit(units_[u]);
            });
        } catch (...) {
            ULTRA_CHECK_NET_COMPUTE_END();
            throw;
        }
        ULTRA_CHECK_NET_COMPUTE_END();
        return;
    }
    // Inline sweep: the same canonical algorithm, unit by unit, so the
    // unsharded path is byte-identical to the sharded one.
    for (Unit &unit : units_)
        arrivalPhaseUnit(unit);
}

void
Network::buildPullLists(unsigned start)
{
    // Sequential pre-pass: walk the EXACT legacy sender sweep (per
    // sender stage: groups ascending, the sorted active-column prefix,
    // ports in this cycle's rotation) and append every eligible
    // (switch, port) to the RECEIVING unit's pull list.  Eligibility
    // (link idle, queue non-empty) is stable until the window reaches
    // it: a listed port's state is mutated only by its own single
    // pull, and the sequential sub-phases (final forward stage,
    // reverse stage 0) touch no hop port.  Each output port feeds
    // exactly one next-stage switch, so replaying a unit's list in
    // order reproduces the sweep's per-queue claim order, per-inbox
    // push order and activation order byte for byte.
    const unsigned stages = topo_.stages();
    const unsigned groups = plan_.groupsPerStage();
    for (auto &copy : copies_) {
        for (unsigned s = 0; s + 1 < stages; ++s) {
            for (unsigned g = 0; g < groups; ++g) {
                const std::size_t u =
                    (static_cast<std::size_t>(copy.index) * stages + s) *
                        groups +
                    g;
                Unit &unit = units_[u];
                for (std::size_t i = 0; i < mergeLen_[u]; ++i) {
                    const std::uint32_t idx = unit.active[i];
                    Node &node = copy.stage[s][idx];
                    for (unsigned p = 0; p < cfg_.k; ++p) {
                        const unsigned port = (start + p) % cfg_.k;
                        const OutPort &out = node.fwd[port];
                        if (out.linkFreeAt > now_ ||
                            out.queue.empty()) {
                            continue;
                        }
                        const OmegaTopology::Port next = topo_.intoStage(
                            topo_.lineFrom(idx, port), s + 1);
                        units_[plan_.unitOf(copy.index, s + 1, next.sw)]
                            .fwdPull.push_back({idx, port});
                    }
                }
            }
        }
        for (unsigned s = 1; s < stages; ++s) {
            for (unsigned g = 0; g < groups; ++g) {
                const std::size_t u =
                    (static_cast<std::size_t>(copy.index) * stages + s) *
                        groups +
                    g;
                Unit &unit = units_[u];
                for (std::size_t i = 0; i < mergeLen_[u]; ++i) {
                    const std::uint32_t idx = unit.active[i];
                    Node &node = copy.stage[s][idx];
                    for (unsigned p = 0; p < cfg_.k; ++p) {
                        const unsigned port = (start + p) % cfg_.k;
                        const OutPort &out = node.rev[port];
                        if (out.linkFreeAt > now_ ||
                            out.queue.empty()) {
                            continue;
                        }
                        const std::uint32_t prev_idx =
                            topo_.unshuffle(topo_.lineFrom(idx, port)) >>
                            log2Exact(cfg_.k);
                        units_[plan_.unitOf(copy.index, s - 1, prev_idx)]
                            .revPull.push_back({idx, port});
                    }
                }
            }
        }
    }
}

void
Network::execPulls(Unit &unit, bool forward)
{
    Copy &copy = copies_[unit.copy];
    if (forward) {
        const unsigned s = unit.stage - 1;
        for (const PullWire &w : unit.fwdPull)
            departForwardHop(copy, s, w.sw, static_cast<unsigned>(w.port));
        unit.fwdPull.clear();
    } else {
        const unsigned s = unit.stage + 1;
        for (const PullWire &w : unit.revPull)
            departReverseHop(copy, s, w.sw, static_cast<unsigned>(w.port));
        unit.revPull.clear();
    }
}

void
Network::departWindow(bool forward)
{
    const unsigned stages = topo_.stages();
    const unsigned groups = plan_.groupsPerStage();
    // Receiving stages in ripple order: forward rs = stages-1 .. 1
    // (sender stage descending), reverse rs = 0 .. stages-2.
    const unsigned n_rs = stages - 1;
    if (n_rs == 0)
        return;

    if (engine_ != nullptr && engine_->threads() > 1) {
        ULTRA_CHECK_NET_DEPART_BEGIN(now_);
        try {
            prof::Profiler *const prof = prof_;
            engine_->forEachShard([this, forward, stages, groups,
                                   n_rs, prof](unsigned shard) {
                const par::ShardRange r = departShards_.range(shard);
                unsigned step = 0;
                try {
                    for (; step < n_rs; ++step) {
                        const unsigned rs =
                            forward ? stages - 1 - step : step;
                        for (std::size_t slot = r.begin; slot < r.end;
                             ++slot) {
                            const std::size_t c = slot / groups;
                            const std::size_t g = slot % groups;
                            execPulls(
                                units_[(c * stages + rs) * groups + g],
                                forward);
                        }
                        // One stage completes everywhere before the
                        // next starts: stage rs-1's own-queue space
                        // mutations must not race stage rs's pulls.
                        if (step + 1 < n_rs) {
                            if (prof != nullptr)
                                prof->stageWaitBegin(shard);
                            engine_->stageBarrier().arriveAndWait();
                            if (prof != nullptr)
                                prof->stageWaitEnd(shard);
                        }
                    }
                } catch (...) {
                    // Keep this shard arriving at the remaining stage
                    // barriers so the other shards can finish instead
                    // of deadlocking; the engine rethrows after join.
                    for (unsigned b = step; b + 1 < n_rs; ++b)
                        engine_->stageBarrier().arriveAndWait();
                    throw;
                }
            });
        } catch (...) {
            ULTRA_CHECK_NET_DEPART_END();
            throw;
        }
        ULTRA_CHECK_NET_DEPART_END();
        return;
    }
    // Inline window: identical order, all slots in slot order.
    for (unsigned step = 0; step < n_rs; ++step) {
        const unsigned rs = forward ? stages - 1 - step : step;
        for (unsigned c = 0; c < cfg_.d; ++c) {
            for (unsigned g = 0; g < groups; ++g)
                execPulls(unitAt(c, rs, g), forward);
        }
    }
}

void
Network::mergePhase()
{
    // Rotate the service order across cycles so no output port (and
    // hence no subtree of PEs) gets a systematic arbitration advantage.
    const unsigned start = static_cast<unsigned>(now_) % cfg_.k;
    const unsigned stages = topo_.stages();
    const unsigned groups = plan_.groupsPerStage();

    // Snapshot every unit's active count: columns activated DURING the
    // merge (claim pumping, next-hop handoffs) depart starting next
    // cycle, which keeps the sweep a pure function of the pre-merge
    // state.  The lists themselves were sorted by the arrival phase, so
    // a stage's columns are visited in ascending order regardless of
    // the group partition.
    for (std::size_t u = 0; u < units_.size(); ++u)
        mergeLen_[u] = units_[u].active.size();

    auto sweepStage = [&](Copy &copy, unsigned s, bool forward) {
        for (unsigned g = 0; g < groups; ++g) {
            const std::size_t u =
                (static_cast<std::size_t>(copy.index) * stages + s) *
                    groups +
                g;
            Unit &unit = units_[u];
            for (std::size_t i = 0; i < mergeLen_[u]; ++i) {
                const std::uint32_t idx = unit.active[i];
                for (unsigned p = 0; p < cfg_.k; ++p) {
                    if (forward)
                        departForward(copy, s, idx, (start + p) % cfg_.k);
                    else
                        departReverse(copy, s, idx, (start + p) % cfg_.k);
                }
            }
        }
    };

    std::uint64_t mark = prof_ != nullptr ? prof::Profiler::nowNs() : 0;
    const auto lap = [&](prof::Phase p) {
        if (prof_ == nullptr)
            return;
        const std::uint64_t next = prof::Profiler::nowNs();
        prof_->phaseAdd(p, next - mark);
        mark = next;
    };

    if (cfg_.parallelDeparture && stages > 1) {
        // Receiver-pull schedule (byte-identical to the sender sweep,
        // see buildPullLists): the hop stages run as parallel windows;
        // only the MNI handoff and the PE deliveries stay sequential.
        buildPullLists(start);
        lap(prof::Phase::NetPrePass);
        for (auto &copy : copies_)
            sweepStage(copy, stages - 1, true);
        lap(prof::Phase::NetSweepFwd);
        if (prof_ != nullptr)
            prof_->setEpisodePhase(prof::Phase::NetDepartFwd);
        departWindow(true);
        lap(prof::Phase::NetDepartFwd);
        for (auto &copy : copies_)
            sweepStage(copy, 0, false);
        lap(prof::Phase::NetSweepRev);
        if (prof_ != nullptr)
            prof_->setEpisodePhase(prof::Phase::NetDepartRev);
        departWindow(false);
        lap(prof::Phase::NetDepartRev);
    } else {
        // Forward departures in stage-descending order: a downstream
        // dequeue at stage s+1 frees space before the stage-s sender
        // tries to claim it, so a full pipeline ripples forward
        // without bubbles.
        for (auto &copy : copies_) {
            for (unsigned s = stages; s-- > 0;)
                sweepStage(copy, s, true);
        }
        lap(prof::Phase::NetSweepFwd);
        // Reverse departures ripple the other way: stage-ascending.
        for (auto &copy : copies_) {
            for (unsigned s = 0; s < stages; ++s)
                sweepStage(copy, s, false);
        }
        lap(prof::Phase::NetSweepRev);
    }

    drainUnitStaging();
    lap(prof::Phase::NetDrain);
}

void
Network::drainUnitStaging()
{
    // Fixed unit order makes every cross-unit effect deterministic: the
    // same kills fire, the same messages return to the same pools, and
    // the same samples land in the same accumulator order no matter how
    // the arrival phase was scheduled.
    for (Unit &unit : units_) {
        const UnitStats &d = unit.delta;
        if (prof_ != nullptr) {
            // Observe staged sizes before the clears below; this is
            // the sequential point where the whole tick's cross-unit
            // staging is visible at once.
            const std::uint32_t u =
                static_cast<std::uint32_t>(&unit - units_.data());
            prof_->unitStagingHighWater(
                u, unit.traces.size() + unit.departWaits.size() +
                       unit.kills.size() + unit.dead.size() +
                       unit.queueLenSamples.size());
            prof_->unitPool(u, unit.pool.allocCount(),
                            unit.pool.capacity());
        }
        if (unit.traces.empty() && unit.kills.empty() &&
            unit.dead.empty() && unit.queueLenSamples.empty() &&
            unit.departWaits.empty() && d.combined == 0 &&
            d.decombined == 0 && d.killed == 0 &&
            d.revOverflowPackets == 0 && d.stageCombines == 0) {
            continue; // idle unit: nothing staged this cycle
        }
        if (trace_) {
            for (const StagedTrace &t : unit.traces) {
                if (t.span) {
                    trace_->complete(t.track, t.tid, t.name, t.at,
                                     t.dur, t.id);
                } else {
                    trace_->instant(t.track, t.tid, t.name, t.at, t.id,
                                    t.link);
                }
            }
        }
        unit.traces.clear();

        // Departure-window queue waits: pure integer folds, so the
        // unit-order replay yields the exact aggregates the legacy
        // in-sweep noteFwdDepart/noteRevDepart calls produced.
        for (const DepartWait &w : unit.departWaits)
            lat_->foldDepartWait(w.fwd, w.stage, w.sw, w.wait);
        unit.departWaits.clear();

        for (Message *msg : unit.kills) {
            if (msg->lat) {
                lat_->closeKilled(msg->lat);
                msg->lat = nullptr;
            }
            if (killFn_)
                killFn_(msg->origin, msg->tag);
            poolOf(msg).free(msg);
        }
        unit.kills.clear();

        for (Message *msg : unit.dead)
            poolOf(msg).free(msg);
        unit.dead.clear();

        stats_.combined += unit.delta.combined;
        stats_.decombined += unit.delta.decombined;
        stats_.killed += unit.delta.killed;
        stats_.revOverflowPackets += unit.delta.revOverflowPackets;
        stats_.combinesPerStage[unit.stage] += unit.delta.stageCombines;
        unit.delta = UnitStats{};

        for (double sample : unit.queueLenSamples)
            stats_.queueLenAtEnqueue.add(sample);
        unit.queueLenSamples.clear();
    }
}

void
Network::processMnis(Copy &copy)
{
    for (std::size_t i = 0; i < copy.activeMnis.size(); ++i) {
        const MMId mm = copy.activeMnis[i];
        MniState &mni = copy.mni[mm];

        std::size_t keep = 0;
        for (std::size_t j = 0; j < mni.inbox.size(); ++j) {
            Arrival &arr = mni.inbox[j];
            if (arr.at <= now_) {
                arr.msg->mniArriveAt = arr.at;
                if (arr.msg->lat)
                    lat_->noteMniArrive(arr.msg->lat, arr.at);
                stats_.oneWayTransit.add(static_cast<double>(
                    arr.at - arr.msg->injectedAt));
                if (cfg_.burroughsKill)
                    mni.pending.enqueueUnreserved(arr.msg);
                else
                    mni.pending.enqueue(arr.msg);
            } else {
                mni.inbox[keep++] = arr;
            }
        }
        mni.inbox.resize(keep);

        if (mni.serviceFreeAt <= now_ && !mni.pending.empty()) {
            Message *msg = mni.pending.head();
            const std::uint32_t reply_packets =
                cfg_.packetsFor(msg->op, true);
            // Reverse-path entry point: the switch this request left.
            const std::uint32_t sw_idx = msg->dest >> log2Exact(cfg_.k);
            const unsigned last = topo_.stages() - 1;
            Node &entry_node = copy.stage[last][sw_idx];
            const unsigned rev_port =
                topo_.routeDigit(msg->origin, last);
            OutQueue &rev_queue = entry_node.rev[rev_port].queue;
            bool have_space;
            if (cfg_.burroughsKill) {
                have_space = true;
            } else {
                have_space = acquireSpace(mni.claimId, mni.claimPkts,
                                          mni.claimTarget, rev_queue,
                                          reply_packets);
                if (!have_space) {
                    // The claim is serviced as the rev queue drains.
                    activateNode(copy, last, sw_idx);
                }
            }
            if (have_space) {
                mni.pending.dequeue();
                stats_.mmQueueWait.add(
                    static_cast<double>(now_ - msg->mniArriveAt));
                if (msg->lat) {
                    lat_->noteServiceStart(
                        msg->lat, now_, 1 + msg->timesCombined,
                        std::max<Cycle>(cfg_.mmAccessTime,
                                        reply_packets));
                }
                if (trace_) {
                    trace_->complete(mmTrack_, mm, mem::opName(msg->op),
                                     now_, cfg_.mmAccessTime, msg->id);
                }
                msg->data =
                    memory_.execute(msg->op, msg->paddr, msg->data);
                makeReply(msg);
                msg->packets = reply_packets;
                entry_node.revInbox.push_back(
                    {msg, now_ + cfg_.mmAccessTime + 1});
                activateNode(copy, last, sw_idx);
                mni.serviceFreeAt =
                    now_ + std::max<Cycle>(cfg_.mmAccessTime,
                                           reply_packets);
                ++stats_.mmServed;
            }
        }

        mni.active = !mni.inbox.empty() || !mni.pending.empty();
    }
    std::erase_if(copy.activeMnis, [&](MMId mm) {
        MniState &mni = copy.mni[mm];
        if (mni.active)
            return false;
        mni.inList = false;
        return true;
    });
}

void
Network::makeReply(Message *msg)
{
    msg->isReply = true;
    msg->requestId = msg->id;
    msg->combinedAtThisQueue = 0;
}

void
Network::commitPhase()
{
    // Ideal-paracomputer mode: execute and answer everything injected
    // last cycle, in injection order.
    if (cfg_.idealParacomputer && !idealPending_.empty()) {
        std::size_t keep_ideal = 0;
        for (std::size_t i = 0; i < idealPending_.size(); ++i) {
            Arrival &arr = idealPending_[i];
            if (arr.at > now_) {
                idealPending_[keep_ideal++] = arr;
                continue;
            }
            Message *msg = arr.msg;
            msg->data = memory_.execute(msg->op, msg->paddr, msg->data);
            ++stats_.mmServed;
            stats_.oneWayTransit.add(1.0);
            makeReply(msg);
            deliveries_.push_back({msg, now_});
        }
        idealPending_.resize(keep_ideal);
    }

    // Deliveries due this cycle reach the PNIs first so reply-driven
    // callbacks can inject in the same cycle.
    std::size_t keep = 0;
    for (std::size_t i = 0; i < deliveries_.size(); ++i) {
        Arrival &arr = deliveries_[i];
        if (arr.at <= now_) {
            Message *msg = arr.msg;
            stats_.roundTrip.add(
                static_cast<double>(arr.at - msg->injectedAt));
            stats_.roundTripHist.add(arr.at - msg->injectedAt);
            ++stats_.delivered;
            if (msg->lat) {
                lat_->closeDelivered(msg->lat, arr.at);
                msg->lat = nullptr;
            }
            if (trace_) {
                trace_->instant(peTrack_, msg->origin, "reply", now_,
                                msg->requestId);
            }
            if (deliverFn_)
                deliverFn_(msg->origin, msg->tag, msg->data);
            poolOf(msg).free(msg);
        } else {
            deliveries_[keep++] = arr;
        }
    }
    deliveries_.resize(keep);
}

void
Network::tick()
{
    ULTRA_CHECK_COMMIT_ONLY("net.network.tick");
    // Chained phase stamps: each boundary is a single clock read, and
    // with no profiler attached the whole ladder compiles down to null
    // tests.  The phase times tile tick() wall time by construction.
    std::uint64_t mark = prof_ != nullptr ? prof::Profiler::nowNs() : 0;
    const auto lap = [&](prof::Phase p) {
        if (prof_ == nullptr)
            return;
        const std::uint64_t next = prof::Profiler::nowNs();
        prof_->phaseAdd(p, next - mark);
        mark = next;
    };
    commitPhase();
    lap(prof::Phase::NetCommit);
    // MNIs are few, cheap and touch cross-unit state (last-stage rev
    // queues, the memory system): they stay sequential, before the
    // parallel arrival phase so every unit sees the same pre-arrival
    // queue state.
    for (auto &copy : copies_)
        processMnis(copy);
    lap(prof::Phase::NetMni);
    if (prof_ != nullptr)
        prof_->setEpisodePhase(prof::Phase::NetArrival);
    arrivalPhase();
    lap(prof::Phase::NetArrival);
    mergePhase();
    ++now_;
}

bool
Network::drain(Cycle max_cycles)
{
    const Cycle deadline = now_ + max_cycles;
    while (inFlight() > 0 && now_ < deadline)
        tick();
    return inFlight() == 0;
}


std::string
Network::dumpState() const
{
    std::ostringstream os;
    os << "cycle " << now_ << ", live messages " << inFlight() << "\n";
    auto show_queue = [&](const char *what, unsigned c, unsigned s,
                          std::uint32_t idx, unsigned port,
                          const OutQueue &queue, Cycle link_free) {
        if (queue.empty() && queue.reservedPackets() == 0)
            return;
        os << "  copy" << c << " stage" << s << " sw" << idx << " "
           << what << port << ": " << queue.sizeMessages() << " msgs, "
           << queue.usedPackets() << "+" << queue.reservedPackets()
           << " pkts";
        if (link_free > now_)
            os << ", link busy until " << link_free;
        if (!queue.empty()) {
            const Message *head = queue.head();
            os << ", head " << mem::opName(head->op)
               << (head->isReply ? " reply" : " req") << " paddr "
               << head->paddr << " pkts " << head->packets << " age "
               << (now_ - head->injectedAt);
        }
        os << "\n";
    };
    for (unsigned c = 0; c < copies_.size(); ++c) {
        const Copy &copy = copies_[c];
        for (unsigned s = 0; s < copy.stage.size(); ++s) {
            for (std::uint32_t idx = 0; idx < copy.stage[s].size();
                 ++idx) {
                const Node &node = copy.stage[s][idx];
                for (unsigned p = 0; p < cfg_.k; ++p) {
                    show_queue("fwd", c, s, idx, p, node.fwd[p].queue,
                               node.fwd[p].linkFreeAt);
                    show_queue("rev", c, s, idx, p, node.rev[p].queue,
                               node.rev[p].linkFreeAt);
                }
                if (!node.wb.empty()) {
                    os << "  copy" << c << " stage" << s << " sw"
                       << idx << " waitbuf: " << node.wb.size()
                       << " entries\n";
                }
                if (!node.fwdInbox.empty() || !node.revInbox.empty()) {
                    os << "  copy" << c << " stage" << s << " sw"
                       << idx << " inbox: " << node.fwdInbox.size()
                       << " fwd, " << node.revInbox.size()
                       << " rev\n";
                }
            }
        }
        for (MMId mm = 0; mm < copy.mni.size(); ++mm) {
            const MniState &mni = copy.mni[mm];
            if (mni.pending.empty() && mni.inbox.empty())
                continue;
            os << "  copy" << c << " mni" << mm << ": "
               << mni.pending.sizeMessages() << " msgs, "
               << mni.pending.usedPackets() << "+"
               << mni.pending.reservedPackets()
               << " pkts, service free at " << mni.serviceFreeAt
               << ", inbox " << mni.inbox.size() << "\n";
        }
    }
    return os.str();
}

namespace
{

/** Append one message as a JSON object (protocol dump format). */
void
messageJson(std::ostringstream &os, const Message *msg, Cycle now)
{
    os << "{\"id\": " << msg->id << ", \"op\": \""
       << mem::opName(msg->op) << "\", \"reply\": "
       << (msg->isReply ? "true" : "false") << ", \"paddr\": "
       << msg->paddr << ", \"origin\": " << msg->origin
       << ", \"dest\": " << msg->dest << ", \"packets\": "
       << msg->packets << ", \"combined\": " << msg->timesCombined
       << ", \"age\": " << (now - msg->injectedAt) << "}";
}

/** Append one output queue as a JSON object. */
void
queueJson(std::ostringstream &os, const OutQueue &queue, Cycle now)
{
    os << "{\"msgs\": " << queue.sizeMessages() << ", \"used_pkts\": "
       << queue.usedPackets() << ", \"reserved_pkts\": "
       << queue.reservedPackets() << ", \"capacity_pkts\": "
       << queue.capacityPackets() << ", \"entries\": [";
    bool first = true;
    for (const Message *msg : queue.entries()) {
        if (!first)
            os << ", ";
        first = false;
        messageJson(os, msg, now);
    }
    os << "]}";
}

} // namespace

std::string
Network::switchJson(unsigned copy, unsigned stage,
                    std::uint32_t index) const
{
    if (copy >= copies_.size() || stage >= topo_.stages() ||
        index >= copies_[copy].stage[stage].size()) {
        return "";
    }
    const Node &node = copies_[copy].stage[stage][index];
    std::ostringstream os;
    os << "{\"copy\": " << copy << ", \"stage\": " << stage
       << ", \"index\": " << index << ", \"tomm\": [";
    for (unsigned p = 0; p < cfg_.k; ++p) {
        if (p > 0)
            os << ", ";
        queueJson(os, node.fwd[p].queue, now_);
    }
    os << "], \"tope\": [";
    for (unsigned p = 0; p < cfg_.k; ++p) {
        if (p > 0)
            os << ", ";
        queueJson(os, node.rev[p].queue, now_);
    }
    os << "], \"wait_buffer\": [";
    bool first = true;
    for (const WaitEntry &entry : node.wb.entries()) {
        if (!first)
            os << ", ";
        first = false;
        os << "{\"wait_key\": " << entry.waitKey
           << ", \"satisfied_id\": " << entry.satisfiedId
           << ", \"origin\": " << entry.satisfiedOrigin
           << ", \"op\": \"" << mem::opName(entry.satisfiedOp)
           << "\", \"paddr\": " << entry.paddr << ", \"age\": "
           << (now_ - entry.createdAt) << "}";
    }
    os << "], \"inbox\": {\"fwd\": " << node.fwdInbox.size()
       << ", \"rev\": " << node.revInbox.size() << "}}";
    return os.str();
}

std::string
Network::mniJson(unsigned copy, MMId mm) const
{
    if (copy >= copies_.size() || mm >= copies_[copy].mni.size())
        return "";
    const MniState &mni = copies_[copy].mni[mm];
    std::ostringstream os;
    os << "{\"copy\": " << copy << ", \"module\": " << mm
       << ", \"service_free_at\": " << mni.serviceFreeAt
       << ", \"inbox\": " << mni.inbox.size() << ", \"pending\": ";
    queueJson(os, mni.pending, now_);
    os << "}";
    return os.str();
}

void
Network::resetStats()
{
    const auto stages = stats_.combinesPerStage.size();
    stats_ = NetStats{};
    stats_.combinesPerStage.assign(stages, 0);
}

std::uint64_t
Network::stageQueuePackets(unsigned stage, bool to_mm) const
{
    ULTRA_ASSERT(stage < topo_.stages());
    std::uint64_t total = 0;
    for (const Copy &copy : copies_) {
        for (const Node &node : copy.stage[stage]) {
            const auto &ports = to_mm ? node.fwd : node.rev;
            for (const OutPort &out : ports)
                total += out.queue.usedPackets();
        }
    }
    return total;
}

std::uint64_t
Network::stageWaitBufferEntries(unsigned stage) const
{
    ULTRA_ASSERT(stage < topo_.stages());
    std::uint64_t total = 0;
    for (const Copy &copy : copies_) {
        for (const Node &node : copy.stage[stage])
            total += node.wb.size();
    }
    return total;
}

std::uint64_t
Network::mniPendingPackets() const
{
    std::uint64_t total = 0;
    for (const Copy &copy : copies_) {
        for (const MniState &mni : copy.mni)
            total += mni.pending.usedPackets();
    }
    return total;
}

void
Network::registerStats(obs::Registry &registry,
                       const std::string &prefix) const
{
    auto count = [&](const char *leaf, const std::uint64_t NetStats::*f,
                     const char *desc) {
        registry.addScalar(prefix + "." + leaf,
                           [this, f] {
                               return static_cast<double>(stats_.*f);
                           },
                           desc);
    };
    count("injected", &NetStats::injected, "requests entered");
    count("mm_served", &NetStats::mmServed, "requests executed at MMs");
    count("delivered", &NetStats::delivered, "replies handed to PEs");
    count("combined", &NetStats::combined,
          "requests absorbed by combining");
    count("decombined", &NetStats::decombined,
          "replies synthesized back");
    count("killed", &NetStats::killed, "Burroughs-mode kills");
    count("rev_overflow_packets", &NetStats::revOverflowPackets,
          "fission slack packets");

    registry.addAccumulator(prefix + ".one_way_transit",
                            &stats_.oneWayTransit,
                            "inject -> full receipt at MNI, cycles");
    registry.addAccumulator(prefix + ".round_trip", &stats_.roundTrip,
                            "inject -> reply receipt at PE, cycles");
    registry.addAccumulator(prefix + ".mm_queue_wait",
                            &stats_.mmQueueWait,
                            "arrival at MNI -> service start, cycles");
    registry.addAccumulator(prefix + ".queue_len_at_enqueue",
                            &stats_.queueLenAtEnqueue,
                            "ToMM occupancy seen by arrivals, packets");
    registry.addHistogram(prefix + ".round_trip_hist",
                          &stats_.roundTripHist,
                          "round-trip latency distribution");

    registry.addScalar(prefix + ".mni_pending_pkts",
                       [this] {
                           return static_cast<double>(
                               mniPendingPackets());
                       },
                       "packets queued at MNIs (gauge)");
    for (unsigned s = 0; s < topo_.stages(); ++s) {
        const std::string stage =
            prefix + ".stage" + std::to_string(s) + ".";
        registry.addScalar(stage + "combines",
                           [this, s] {
                               return static_cast<double>(
                                   stats_.combinesPerStage[s]);
                           },
                           "requests combined at this stage");
        registry.addScalar(stage + "tomm_pkts",
                           [this, s] {
                               return static_cast<double>(
                                   stageQueuePackets(s, true));
                           },
                           "ToMM queue occupancy (gauge)");
        registry.addScalar(stage + "tope_pkts",
                           [this, s] {
                               return static_cast<double>(
                                   stageQueuePackets(s, false));
                           },
                           "ToPE queue occupancy (gauge)");
        registry.addScalar(stage + "wb_entries",
                           [this, s] {
                               return static_cast<double>(
                                   stageWaitBufferEntries(s));
                           },
                           "wait-buffer fill (gauge)");
    }
}

void
Network::setEventTrace(obs::EventTrace *trace)
{
    trace_ = trace;
    fwdTrack_.clear();
    revTrack_.clear();
    if (trace_ == nullptr)
        return;
    peTrack_ = trace_->track("pe");
    mmTrack_ = trace_->track("mm");
    fwdTrack_.resize(cfg_.d);
    revTrack_.resize(cfg_.d);
    for (unsigned c = 0; c < cfg_.d; ++c) {
        for (unsigned s = 0; s < topo_.stages(); ++s) {
            const std::string base = "net.copy" + std::to_string(c) +
                                     ".stage" + std::to_string(s);
            fwdTrack_[c].push_back(trace_->track(base + ".tomm"));
            revTrack_[c].push_back(trace_->track(base + ".tope"));
        }
    }
}

void
Network::setLatencyObservatory(obs::LatencyObservatory *lat)
{
    // Only whole-lifecycle records make sense: attach while messages are
    // in flight and the partial stamps would fail the decomposition
    // check the moment those messages complete.
    ULTRA_ASSERT(inFlight() == 0,
                 "attach the latency observatory while the network is "
                 "quiescent, not with ", inFlight(),
                 " messages in flight");
    lat_ = lat;
}

} // namespace ultra::net
