/**
 * @file
 * The switch wait buffer (section 3.3).
 *
 * When two requests combine, the switch records an entry describing the
 * satisfied (combined-away) request; entries "await the return of R-old
 * from memory".  A returning reply is associatively searched against the
 * buffer by the id of the request it answers, matched entries are
 * removed, and one additional reply is generated per entry.  The paper
 * supports only pairwise combination so each reply matches at most one
 * entry; a knob in the network config relaxes this for ablation, in
 * which case entries fire in their serialization (insertion) order.
 */

#ifndef ULTRA_NET_WAIT_BUFFER_H
#define ULTRA_NET_WAIT_BUFFER_H

#include <cstdint>
#include <vector>

#include "check/phase_check.h"
#include "common/types.h"
#include "mem/fetch_phi.h"

namespace ultra::obs
{
struct LatencyRecord;
} // namespace ultra::obs

namespace ultra::net
{

/** How the spawned reply's value is derived from the returning value Y. */
enum class ReplyRule : std::uint8_t {
    Decombine, //!< value = decombineReply(decombineOp, Y, datum)
    Fixed,     //!< value = datum, independent of Y
};

/** One record of a combined-away request. */
struct WaitEntry
{
    std::uint64_t waitKey = 0;     //!< id of the forwarded request R-old
    std::uint64_t satisfiedId = 0; //!< id of the combined-away R-new
    PEId satisfiedOrigin = 0;      //!< PE awaiting the spawned reply
    std::uint64_t satisfiedTag = 0;   //!< R-new's PNI cookie
    Cycle satisfiedInjectedAt = 0;    //!< R-new's injection time (stats)
    mem::Op satisfiedOp = mem::Op::Load;
    ReplyRule rule = ReplyRule::Decombine;
    mem::Op decombineOp = mem::Op::Load;
    Word datum = 0;
    /** FA-Store style combining also rewrites the returning reply. */
    bool rewriteReturning = false;
    Word rewriteDatum = 0;

    Addr paddr = kBadAddr; //!< diagnostics only
    Cycle createdAt = 0;   //!< diagnostics only

    /** The combined-away request's lifecycle record, parked here until
     *  the reply fissions (null when no observatory is attached). */
    obs::LatencyRecord *lat = nullptr;
};

/** Associative store of WaitEntry records at one switch. */
class WaitBuffer
{
  public:
    /** @param capacity 0 means unbounded. */
    explicit WaitBuffer(std::uint32_t capacity = 0) : capacity_(capacity) {}

    bool
    full() const
    {
        return capacity_ != 0 && entries_.size() >= capacity_;
    }

    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    /** Bind to the owning StageColumnPlan unit for the phase checker
     *  (see OutQueue::setCheckOwner). */
    void setCheckOwner(std::uint64_t unit) { checkOwner_ = unit; }

    void
    insert(const WaitEntry &entry)
    {
        ULTRA_CHECK_NET_MUTATE("net.wait_buffer.insert", checkOwner_);
        entries_.push_back(entry);
    }

    /**
     * Remove every entry whose waitKey is @p key, appending them to
     * @p out in insertion (serialization) order.  Single pass: matches
     * are moved out and survivors compacted in place, so a miss (the
     * common case) never shifts anything and a hit is O(n) total
     * rather than O(n) per match.
     * @return number of matches.
     */
    std::size_t
    takeMatches(std::uint64_t key, std::vector<WaitEntry> &out)
    {
        ULTRA_CHECK_NET_MUTATE("net.wait_buffer.take", checkOwner_);
        std::size_t keep = 0;
        std::size_t found = 0;
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            if (entries_[i].waitKey == key) {
                out.push_back(entries_[i]);
                ++found;
            } else {
                if (keep != i)
                    entries_[keep] = entries_[i];
                ++keep;
            }
        }
        if (found != 0)
            entries_.resize(keep);
        return found;
    }

    const std::vector<WaitEntry> &entries() const { return entries_; }

  private:
    std::uint32_t capacity_;
    std::uint64_t checkOwner_ = ~0ULL; //!< phase-checker unit (kNoOwner)
    std::vector<WaitEntry> entries_;
};

} // namespace ultra::net

#endif // ULTRA_NET_WAIT_BUFFER_H
