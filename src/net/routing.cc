#include "routing.h"

#include "common/log.h"

namespace ultra::net
{

OmegaTopology::OmegaTopology(std::uint32_t n, unsigned k)
    : n_(n), k_(k)
{
    ULTRA_ASSERT(isPowerOfTwo(k) && k >= 2, "switch degree must be a "
                 "power of two >= 2, got ", k);
    ULTRA_ASSERT(isPowerOfTwo(n) && n >= k, "port count must be a power "
                 "of two >= k, got ", n);
    kBits_ = log2Exact(k);
    stages_ = logBase(n, k);
    ULTRA_ASSERT(stages_ * kBits_ == log2Exact(n),
                 "port count ", n, " is not a power of the degree ", k);
    mask_ = n - 1;
}

std::uint32_t
OmegaTopology::shuffle(std::uint32_t line) const
{
    const unsigned total_bits = stages_ * kBits_;
    return ((line << kBits_) & mask_) | (line >> (total_bits - kBits_));
}

std::uint32_t
OmegaTopology::unshuffle(std::uint32_t line) const
{
    const unsigned total_bits = stages_ * kBits_;
    return (line >> kBits_) |
           ((line & (k_ - 1)) << (total_bits - kBits_));
}

unsigned
OmegaTopology::routeDigit(std::uint32_t x, unsigned s) const
{
    ULTRA_ASSERT(s < stages_);
    return (x >> ((stages_ - 1 - s) * kBits_)) & (k_ - 1);
}

OmegaTopology::Port
OmegaTopology::intoStage(std::uint32_t line, unsigned s) const
{
    (void)s; // the wiring is the same shuffle before every stage
    const std::uint32_t y = shuffle(line);
    return {y >> kBits_, static_cast<unsigned>(y & (k_ - 1))};
}

std::uint32_t
OmegaTopology::forwardHop(std::uint32_t line, unsigned s,
                          std::uint32_t dest) const
{
    const Port port = intoStage(line, s);
    return lineFrom(port.sw, routeDigit(dest, s));
}

std::uint32_t
OmegaTopology::reverseHop(std::uint32_t line, unsigned s,
                          std::uint32_t origin) const
{
    const std::uint32_t sw = line >> kBits_;
    return unshuffle(lineFrom(sw, routeDigit(origin, s)));
}

void
OmegaTopology::tracePath(std::uint32_t pe, std::uint32_t mm,
                         std::uint32_t *lines_out) const
{
    lines_out[0] = pe;
    for (unsigned s = 0; s < stages_; ++s)
        lines_out[s + 1] = forwardHop(lines_out[s], s, mm);
}

} // namespace ultra::net
