/**
 * @file
 * Processor-network interfaces (section 3.4).
 *
 * The PNI performs virtual-to-physical translation (with the hashing of
 * section 3.1.4), assembles requests, and enforces the pipelining
 * policy: a PE may have at most a configured number of outstanding
 * requests and -- as the wait-buffer design requires -- at most one
 * outstanding reference to any single memory location.  Requests issue
 * in FIFO order per PE; the head request stalls until its constraints
 * clear and a network copy accepts it.
 *
 * In Burroughs (kill-on-conflict) mode, killed requests are re-queued
 * and retried after a configurable delay.
 */

#ifndef ULTRA_NET_PNI_H
#define ULTRA_NET_PNI_H

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "mem/address_hash.h"
#include "net/network.h"

namespace ultra::net
{

/** PNI policy knobs. */
struct PniConfig
{
    /** Max outstanding requests per PE (0 = unlimited). */
    unsigned maxOutstanding = 8;
    /** Enforce one outstanding reference per memory location. */
    bool enforceUniqueLocation = true;
    /** Burroughs mode: cycles to wait before retrying a killed request. */
    Cycle killRetryDelay = 4;
};

/** Per-PE request statistics (feeds Table 1). */
struct PniStats
{
    std::uint64_t completed = 0;
    std::uint64_t retries = 0; //!< Burroughs-mode re-issues
    Accumulator accessTime;    //!< request() -> completion, cycles
    Accumulator issueWait;     //!< request() -> network acceptance
};

/** The array of PNIs for all PEs, sharing one network. */
class PniArray
{
  public:
    /** Completion: the requested value (or ack) is available. */
    using CompleteFn =
        std::function<void(PEId pe, std::uint64_t ticket, Word value)>;

    PniArray(const PniConfig &cfg, Network &network,
             const mem::AddressHash &hash);

    PniArray(const PniArray &) = delete;
    PniArray &operator=(const PniArray &) = delete;

    void setCompleteCallback(CompleteFn fn) { completeFn_ = std::move(fn); }

    /** Observer of every request() call (trace recording; see
     *  net/trace.h).  Pass nullptr to detach. */
    using RequestProbe =
        std::function<void(PEId pe, Op op, Addr vaddr, Word data)>;
    void setRequestProbe(RequestProbe fn) { requestProbe_ = std::move(fn); }

    /** The network this PNI array feeds (for probes and replay). */
    Network &network() { return network_; }

    /**
     * Enqueue a request; returns a ticket identifying it.  Issue into
     * the network happens on subsequent tick()s, FIFO per PE.
     */
    std::uint64_t request(PEId pe, Op op, Addr vaddr, Word data);

    /** Issue eligible requests; call once per cycle before
     *  Network::tick(). */
    void tick();

    /** Requests queued or outstanding for @p pe. */
    std::size_t pendingCount(PEId pe) const;

    /** True when @p pe has nothing queued or outstanding. */
    bool idle(PEId pe) const { return pendingCount(pe) == 0; }

    const PniStats &stats() const { return stats_; }
    void resetStats();

    /** Requests enqueued by PEs (sum of per-PE counters). */
    std::uint64_t requestedCount() const;

    /**
     * Declare the PE->shard ownership map used by the parallel compute
     * phase.  request() may then be called concurrently for PEs owned
     * by different shards: everything it touches (the PE's issue queue,
     * ticket counter, request count, and the shard's activation staging
     * list) is owned by shardOfPe[pe].  tick() — always sequential —
     * merges the staged activations and sorts the active list, so issue
     * order is a pure function of PE ids, not of shard arrival order.
     *
     * With no map set (or shards == 1) behaviour is unchanged apart
     * from the deterministic sort.
     */
    void setShardMap(unsigned shards, std::vector<unsigned> shardOfPe);

    /** True when a request probe is attached (probe call order is not
     *  deterministic under parallel stepping; callers clamp threads). */
    bool hasRequestProbe() const
    {
        return static_cast<bool>(requestProbe_);
    }

    /** Requests currently in the network (all PEs, gauge). */
    std::size_t outstandingCount() const;

    /** Requests queued at the PNIs awaiting issue (all PEs, gauge). */
    std::size_t queuedCount() const;

    /** Register counters and gauges under "<prefix>." (see
     *  Network::registerStats). */
    void registerStats(obs::Registry &registry,
                       const std::string &prefix) const;

    const mem::AddressHash &hash() const { return hash_; }

  private:
    struct QueuedReq
    {
        std::uint64_t ticket;
        Op op;
        Addr paddr;
        Word data;
        Cycle queuedAt;
        Cycle notBefore; //!< kill-retry backoff
    };

    struct PeState
    {
        std::deque<QueuedReq> issueQueue;
        std::unordered_map<std::uint64_t, QueuedReq> outstanding;
        std::unordered_set<Addr> outstandingAddrs;
        bool inActiveList = false;
        /** Tickets are per-PE: the network routes replies by (pe,
         *  ticket), so uniqueness per PE suffices, and a per-PE counter
         *  keeps ticket values independent of cross-PE request order. */
        std::uint64_t nextTicket = 1;
        std::uint64_t requested = 0;
    };

    void activate(PEId pe);
    void onDeliver(PEId pe, std::uint64_t ticket, Word value);
    void onKill(PEId pe, std::uint64_t ticket);

    PniConfig cfg_;
    Network &network_;
    const mem::AddressHash &hash_;
    std::vector<PeState> pes_;
    std::vector<PEId> activePes_;
    /** Newly-activated PEs, staged per shard during the compute phase
     *  (single-writer per inner vector), merged+sorted by tick(). */
    std::vector<std::vector<PEId>> pendingActive_;
    /** PE -> owning shard; empty means everything is shard 0. */
    std::vector<unsigned> shardOfPe_;
    PniStats stats_;
    CompleteFn completeFn_;
    RequestProbe requestProbe_;
};

} // namespace ultra::net

#endif // ULTRA_NET_PNI_H
