/**
 * @file
 * Omega-network topology and routing (section 3.1.1, Figure 2).
 *
 * An n-port network (n a power of k, k a power of two) has
 * D = log_k(n) stages of n/k switches.  A perfect k-shuffle of the n
 * lines precedes every stage.  A message from PE p to MM m leaves the
 * stage-s switch (s = 0 at the PE side) on output port m_{D-1-s}, the
 * s-th most significant base-k digit of m; a returning message leaves on
 * port p_{D-1-s}.  The forward pass consumes destination digits and
 * replaces them with input-port digits, so after D stages the address
 * amalgam holds the return address (section 3.1.2).
 */

#ifndef ULTRA_NET_ROUTING_H
#define ULTRA_NET_ROUTING_H

#include <cstdint>

#include "common/types.h"

namespace ultra::net
{

/** Static topology helper for one Omega network. */
class OmegaTopology
{
  public:
    /** @param n ports per side; @param k switch degree.  n = k^D. */
    OmegaTopology(std::uint32_t n, unsigned k);

    std::uint32_t numPorts() const { return n_; }
    unsigned degree() const { return k_; }
    unsigned stages() const { return stages_; }
    std::uint32_t switchesPerStage() const { return n_ / k_; }

    /** Perfect k-shuffle: rotate the base-k digits left by one. */
    std::uint32_t shuffle(std::uint32_t line) const;

    /** Inverse shuffle: rotate the base-k digits right by one. */
    std::uint32_t unshuffle(std::uint32_t line) const;

    /** Base-k digit of @p x used for routing at stage @p s. */
    unsigned routeDigit(std::uint32_t x, unsigned s) const;

    /**
     * Switch and input port reached at stage @p s by a message on line
     * @p line (the line between stage s-1 and s; the PE id for s = 0).
     */
    struct Port { std::uint32_t sw; unsigned port; };
    Port intoStage(std::uint32_t line, unsigned s) const;

    /**
     * Line leaving stage @p s from switch @p sw, output port @p out.
     * After the final stage this is the MM id.
     */
    std::uint32_t lineFrom(std::uint32_t sw, unsigned out) const
    {
        return sw * k_ + out;
    }

    /**
     * Forward hop: message on @p line entering stage @p s bound for MM
     * @p dest leaves on the returned line.
     */
    std::uint32_t forwardHop(std::uint32_t line, unsigned s,
                             std::uint32_t dest) const;

    /**
     * Reverse hop: reply on @p line on the MM side of stage @p s bound
     * for PE @p origin; returns the line on the PE side of stage @p s.
     */
    std::uint32_t reverseHop(std::uint32_t line, unsigned s,
                             std::uint32_t origin) const;

    /** The full forward path of lines: element s is the line into
     *  stage s; element D is the MM reached. */
    void tracePath(std::uint32_t pe, std::uint32_t mm,
                   std::uint32_t *lines_out) const;

  private:
    std::uint32_t n_;
    unsigned k_;
    unsigned kBits_;
    unsigned stages_;
    std::uint32_t mask_;
};

} // namespace ultra::net

#endif // ULTRA_NET_ROUTING_H
