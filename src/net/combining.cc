#include "combining.h"

#include "common/log.h"

namespace ultra::net
{

using mem::combineOperands;
using mem::opCarriesData;

namespace
{

/** Wait entry skeleton for R-new with identity fields filled in. */
WaitEntry
baseEntry(const Message &r_new)
{
    WaitEntry entry;
    entry.satisfiedId = r_new.id;
    entry.satisfiedOrigin = r_new.origin;
    entry.satisfiedTag = r_new.tag;
    entry.satisfiedInjectedAt = r_new.injectedAt;
    entry.satisfiedOp = r_new.op;
    entry.paddr = r_new.paddr;
    return entry;
}

} // namespace

std::optional<CombinePlan>
planCombine(const Message &r_old, const Message &r_new,
            CombinePolicy policy, std::uint32_t data_packets)
{
    ULTRA_ASSERT(!r_old.isReply && !r_new.isReply);
    ULTRA_ASSERT(r_old.paddr == r_new.paddr);

    if (policy == CombinePolicy::None)
        return std::nullopt;

    CombinePlan plan;
    plan.entry = baseEntry(r_new);
    plan.newOldOp = r_old.op;
    plan.newOldData = r_old.data;

    // Homogeneous pairs: serialize as R-old then R-new.
    if (r_old.op == r_new.op && mem::opCombinable(r_old.op)) {
        plan.newOldData =
            combineOperands(r_old.op, r_old.data, r_new.data);
        plan.entry.rule = ReplyRule::Decombine;
        plan.entry.decombineOp = r_old.op;
        plan.entry.datum = r_old.data;
        return plan;
    }

    if (policy != CombinePolicy::Full)
        return std::nullopt;

    // The heterogeneous rules of section 3.1.3, restricted to the three
    // op kinds the paper names (Load, Store, FetchAdd).
    const Op a = r_old.op;
    const Op b = r_new.op;
    auto grows = [&](Op from, Op to) -> std::uint32_t {
        if (data_packets == 0) // Uniform sizing: all messages equal
            return 0;
        const bool had = opCarriesData(from);
        const bool has = opCarriesData(to);
        return (!had && has) ? data_packets - 1 : 0;
    };

    if (a == Op::FetchAdd && b == Op::Load) {
        // FetchAdd(X,e); Load(X): treat the load as FetchAdd(X,0).
        // Serialization: FA then Load; the load sees Y + e.
        plan.entry.rule = ReplyRule::Decombine;
        plan.entry.decombineOp = Op::FetchAdd;
        plan.entry.datum = r_old.data;
        return plan;
    }
    if (a == Op::Load && b == Op::FetchAdd) {
        // Load(X); FetchAdd(X,f): upgrade the queued load to the FA.
        // Serialization: Load then FA; both receive Y.
        plan.newOldOp = Op::FetchAdd;
        plan.newOldData = r_new.data;
        plan.growOldBy = grows(Op::Load, Op::FetchAdd);
        plan.entry.rule = ReplyRule::Decombine;
        plan.entry.decombineOp = Op::Load;
        plan.entry.datum = 0;
        return plan;
    }
    if (a == Op::FetchAdd && b == Op::Store) {
        // FetchAdd(X,e); Store(X,f): transmit Store(X, e+f) and satisfy
        // the fetch-and-add by returning f (store serializes first).
        plan.newOldOp = Op::Store;
        plan.newOldData = r_old.data + r_new.data;
        plan.entry.rule = ReplyRule::Fixed;
        plan.entry.datum = 0; // store acknowledgement carries no value
        plan.entry.rewriteReturning = true;
        plan.entry.rewriteDatum = r_new.data; // the FA's result is f
        return plan;
    }
    if (a == Op::Store && b == Op::FetchAdd) {
        // Store(X,f); FetchAdd(X,e): forward Store(X, f+e); the FA
        // serializes after the store and returns f.
        plan.newOldOp = Op::Store;
        plan.newOldData = r_old.data + r_new.data;
        plan.entry.rule = ReplyRule::Fixed;
        plan.entry.datum = r_old.data;
        return plan;
    }
    if (a == Op::Load && b == Op::Store) {
        // Load(X); Store(X,f): forward the store and return its value to
        // satisfy the load (store serializes first).
        plan.newOldOp = Op::Store;
        plan.newOldData = r_new.data;
        plan.growOldBy = grows(Op::Load, Op::Store);
        plan.entry.rule = ReplyRule::Fixed;
        plan.entry.datum = 0; // the store's acknowledgement
        plan.entry.rewriteReturning = true;
        plan.entry.rewriteDatum = r_new.data; // the load receives f
        return plan;
    }
    if (a == Op::Store && b == Op::Load) {
        // Store(X,f); Load(X): the load is satisfied with f.
        plan.entry.rule = ReplyRule::Fixed;
        plan.entry.datum = r_old.data;
        return plan;
    }

    return std::nullopt;
}

} // namespace ultra::net
