/**
 * @file
 * The per-output-port message queue of a switch (section 3.1.2 factor 3).
 *
 * Occupancy is counted in packets (the Table-1 simulation limits each
 * queue to fifteen packets).  Space is *reserved* by the upstream sender
 * when it starts transmitting, and converted to real occupancy when the
 * message arrives one hop later; this keeps finite-queue backpressure
 * race-free in the cycle-stepped simulation.  Entries in the middle of
 * the queue remain associatively searchable, which is what enables the
 * combining of section 3.3 (the hardware realization is the systolic
 * queue of section 3.3.1, modeled separately in systolic_queue.h).
 *
 * Storage is struct-of-arrays: the message pointers and their *combine
 * keys* (the physical address each queued request targets) live in two
 * parallel flat arrays behind a ring head.  The combining search — the
 * single hottest loop of a saturated run — then scans a contiguous
 * array of addresses without dereferencing a Message until a key
 * matches, and enqueue/dequeue never allocate in steady state (a deque
 * would allocate and free node blocks on every few operations).
 */

#ifndef ULTRA_NET_OUT_QUEUE_H
#define ULTRA_NET_OUT_QUEUE_H

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "check/phase_check.h"
#include "common/log.h"
#include "net/message.h"

namespace ultra::net
{

/**
 * Searchable FIFO of messages with packet-granular occupancy.
 *
 * Space admission is fair in age order via *claims*: a sender whose
 * message does not fit registers a claim, and freed packets are granted
 * to the oldest claim before any newcomer may reserve.  Without this,
 * a long (data-carrying) message at a congested merge point starves
 * forever -- every freed packet is snatched by a 1-packet message from
 * the other input before 3 free packets ever accumulate (observed on
 * barrier traffic: fetch-and-adds starved behind a poll storm).
 */
class OutQueue
{
  public:
    /** Lightweight oldest-first view over the queued messages. */
    class View
    {
      public:
        View(Message *const *begin, Message *const *end)
            : begin_(begin), end_(end)
        {}
        Message *const *begin() const { return begin_; }
        Message *const *end() const { return end_; }
        std::size_t size() const
        {
            return static_cast<std::size_t>(end_ - begin_);
        }
        Message *operator[](std::size_t i) const { return begin_[i]; }

      private:
        Message *const *begin_;
        Message *const *end_;
    };

    /** @param capacity_packets 0 means unbounded. */
    explicit OutQueue(std::uint32_t capacity_packets = 0)
        : capacity_(capacity_packets)
    {}

    bool unbounded() const { return capacity_ == 0; }

    /**
     * Bind the queue to the StageColumnPlan unit that owns it for the
     * phase-contract checker: mutators are then legal from the
     * sequential phase or from the owning shard during the network
     * compute phase.  Unset (the default) the queue is sequential-only.
     */
    void setCheckOwner(std::uint64_t unit) { checkOwner_ = unit; }

    /**
     * Bind the unit that *dequeues* from this queue during the parallel
     * departure window (the downstream receiver pulling the head; see
     * DESIGN.md "Paying for parallelism").  Space-side mutators keep
     * the arrival owner above; head-side mutators are checked against
     * this owner while the departure phase runs.
     */
    void setDepartOwner(std::uint64_t unit) { departOwner_ = unit; }

    /** Free space check including reservations and granted claims. */
    bool
    canAccept(std::uint32_t pkts) const
    {
        return unbounded() ||
               used_ + reserved_ + grantedTotal_ + pkts <= capacity_;
    }

    /**
     * One-shot reservation: succeeds only when no older claim is
     * waiting and the space is free right now.  On success the space
     * must be consumed by a subsequent enqueue().
     */
    bool
    tryReserve(std::uint32_t pkts)
    {
        ULTRA_CHECK_NET_MUTATE("net.out_queue.reserve", checkOwner_);
        if (unbounded()) {
            reserved_ += pkts;
            return true;
        }
        pump();
        if (!claims_.empty())
            return false; // age-order fairness: claims go first
        if (used_ + reserved_ + grantedTotal_ + pkts > capacity_)
            return false;
        reserved_ += pkts;
        return true;
    }

    /** Register a waiting claim for @p pkts; returns its id. */
    std::uint64_t
    openClaim(std::uint32_t pkts)
    {
        ULTRA_CHECK_NET_MUTATE("net.out_queue.claim", checkOwner_);
        ULTRA_ASSERT(!unbounded(), "claims are for bounded queues");
        claims_.push_back({nextClaimId_, pkts, 0});
        pump();
        return nextClaimId_++;
    }

    /** True when claim @p id is the oldest and fully granted. */
    bool
    claimReady(std::uint64_t id)
    {
        // Not logically a write, but pump() advances grant state.
        ULTRA_CHECK_NET_MUTATE("net.out_queue.claim", checkOwner_);
        pump();
        return !claims_.empty() && claims_.front().id == id &&
               claims_.front().granted == claims_.front().needed;
    }

    /** Convert a ready claim's grant into a reservation. */
    void
    consumeClaim(std::uint64_t id)
    {
        ULTRA_CHECK_NET_MUTATE("net.out_queue.claim", checkOwner_);
        ULTRA_ASSERT(claimReady(id), "consuming a claim that is not "
                     "ready");
        const Claim front = claims_.front();
        claims_.pop_front();
        grantedTotal_ -= front.granted;
        reserved_ += front.needed;
    }

    /** Abandon a claim (e.g. the head message grew while waiting). */
    void
    cancelClaim(std::uint64_t id)
    {
        ULTRA_CHECK_NET_MUTATE("net.out_queue.claim", checkOwner_);
        for (std::size_t i = 0; i < claims_.size(); ++i) {
            if (claims_[i].id == id) {
                grantedTotal_ -= claims_[i].granted;
                claims_.erase(claims_.begin() +
                              static_cast<std::ptrdiff_t>(i));
                return;
            }
        }
        panic("cancelClaim: no such claim");
    }

    std::size_t pendingClaims() const { return claims_.size(); }

    /** Claim space unconditionally (init paths and fission slack). */
    void
    reserve(std::uint32_t pkts)
    {
        ULTRA_CHECK_NET_MUTATE("net.out_queue.reserve", checkOwner_);
        reserved_ += pkts;
    }

    /** Return reserved space unused (e.g. the message was combined). */
    void
    cancelReservation(std::uint32_t pkts)
    {
        ULTRA_CHECK_NET_MUTATE("net.out_queue.reserve", checkOwner_);
        ULTRA_ASSERT(reserved_ >= pkts);
        reserved_ -= pkts;
    }

    /** Append an arriving message, consuming its reservation. */
    void
    enqueue(Message *msg)
    {
        ULTRA_CHECK_NET_MUTATE("net.out_queue.enqueue", checkOwner_);
        ULTRA_ASSERT(reserved_ >= msg->packets,
                     "enqueue without prior reservation");
        reserved_ -= msg->packets;
        used_ += msg->packets;
        push(msg);
    }

    /** Append without a reservation (reply fission; may overflow). */
    void
    enqueueUnreserved(Message *msg)
    {
        ULTRA_CHECK_NET_MUTATE("net.out_queue.enqueue", checkOwner_);
        used_ += msg->packets;
        push(msg);
    }

    /**
     * Grow a queued message by @p extra packets (heterogeneous combining
     * can upgrade a 1-packet load into a data-carrying request).
     * @return false (no change) if the space is not available.
     */
    bool
    grow(Message *msg, std::uint32_t extra)
    {
        ULTRA_CHECK_NET_MUTATE("net.out_queue.grow", checkOwner_);
        if (extra == 0)
            return true;
        if (!unbounded() &&
            used_ + reserved_ + grantedTotal_ + extra > capacity_) {
            return false;
        }
        used_ += extra;
        msg->packets += extra;
        return true;
    }

    bool empty() const { return head_ == msgs_.size(); }
    std::size_t sizeMessages() const { return msgs_.size() - head_; }
    std::uint32_t usedPackets() const { return used_; }
    std::uint32_t reservedPackets() const { return reserved_; }
    std::uint32_t capacityPackets() const { return capacity_; }

    Message *head() const { return msgs_[head_]; }

    /** Remove and return the head message. */
    Message *
    dequeue()
    {
        ULTRA_CHECK_NET_DEQUEUE("net.out_queue.dequeue", checkOwner_,
                                departOwner_);
        Message *msg = msgs_[head_];
        ++head_;
        ULTRA_ASSERT(used_ >= msg->packets);
        used_ -= msg->packets;
        if (head_ == msgs_.size()) {
            msgs_.clear();
            keys_.clear();
            head_ = 0;
        } else if (head_ >= 32 && head_ * 2 >= msgs_.size()) {
            // Compact the consumed prefix once it dominates the array;
            // amortized O(1) per dequeue, and the backing storage is
            // recycled rather than reallocated.
            msgs_.erase(msgs_.begin(),
                        msgs_.begin() + static_cast<std::ptrdiff_t>(head_));
            keys_.erase(keys_.begin(),
                        keys_.begin() + static_cast<std::ptrdiff_t>(head_));
            head_ = 0;
        }
        // The message leaves this switch: it may combine again later.
        msg->combinedAtThisQueue = 0;
        return msg;
    }

    /** Queued messages, oldest first, for dumps and iteration. */
    View
    entries() const
    {
        return View(msgs_.data() + head_, msgs_.data() + msgs_.size());
    }

    /**
     * The combine-key lane: keys()[i] is the physical address of
     * entries()[i].  Contiguous, so the combining search scans it
     * without touching Message memory (struct-of-arrays hot path).
     */
    const Addr *keys() const { return keys_.data() + head_; }

    /** Message at oldest-first position @p i (pairs with keys()). */
    Message *msgAt(std::size_t i) const { return msgs_[head_ + i]; }

  private:
    struct Claim
    {
        std::uint64_t id;
        std::uint32_t needed;
        std::uint32_t granted;
    };

    void
    push(Message *msg)
    {
        msgs_.push_back(msg);
        keys_.push_back(msg->paddr);
    }

    /** Grant freed space to the oldest claim (strict age order). */
    void
    pump()
    {
        if (claims_.empty())
            return;
        Claim &front = claims_.front();
        const std::uint32_t held = used_ + reserved_ + grantedTotal_;
        if (held >= capacity_)
            return;
        const std::uint32_t free_now = capacity_ - held;
        const std::uint32_t want = front.needed - front.granted;
        const std::uint32_t take = std::min(free_now, want);
        front.granted += take;
        grantedTotal_ += take;
    }

    std::uint32_t capacity_;
    std::uint64_t checkOwner_ = ~0ULL; //!< phase-checker unit (kNoOwner)
    std::uint64_t departOwner_ = ~0ULL; //!< departure-window puller
    std::uint32_t used_ = 0;
    std::uint32_t reserved_ = 0;
    std::uint32_t grantedTotal_ = 0;
    std::deque<Claim> claims_;
    std::uint64_t nextClaimId_ = 1;
    /** Ring storage (struct-of-arrays): live entries are
     *  [head_, msgs_.size()); keys_ mirrors msgs_ index-for-index. */
    std::vector<Message *> msgs_;
    std::vector<Addr> keys_;
    std::size_t head_ = 0;
};

} // namespace ultra::net

#endif // ULTRA_NET_OUT_QUEUE_H
