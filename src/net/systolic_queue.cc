#include "systolic_queue.h"

#include "check/phase_check.h"
#include "common/log.h"

namespace ultra::net
{

SystolicQueue::SystolicQueue(unsigned height, bool combining)
    : height_(height), combining_(combining),
      matchCol_(height), middleCol_(height), rightCol_(height)
{
    ULTRA_ASSERT(height >= 2, "systolic queue needs at least 2 slots");
}

SystolicQueue::StepResult
SystolicQueue::step(const std::optional<SystolicItem> &input,
                    bool receiver_ready)
{
    // Systolic slots belong to a switch: they advance in commit only.
    ULTRA_CHECK_COMMIT_ONLY("net.systolic_queue.step");
    StepResult result;

    // 1. Exit from the bottom of the right column; a matched partner in
    //    the match column leaves in the same cycle (they "enter the
    //    combining unit simultaneously").
    if (receiver_ready && rightCol_[0].full) {
        result.exited = rightCol_[0].item;
        rightCol_[0].full = false;
        --occupancy_;
        if (matchCol_[0].full) {
            result.partner = matchCol_[0].item;
            matchCol_[0].full = false;
            --occupancy_;
        }
    }

    // 2. Right (and match) columns shift down into empty slots.  The
    //    match slot is rigidly paired with its right-column partner.
    for (unsigned i = 1; i < height_; ++i) {
        if (rightCol_[i].full && !rightCol_[i - 1].full) {
            rightCol_[i - 1] = rightCol_[i];
            rightCol_[i].full = false;
            if (matchCol_[i].full) {
                ULTRA_ASSERT(!matchCol_[i - 1].full);
                matchCol_[i - 1] = matchCol_[i];
                matchCol_[i].full = false;
            }
        }
    }

    // 3. Middle-column items: match against the adjacent right slot,
    //    else hop right into an empty slot, else climb.  Top-down order
    //    lets a climbing item move into the slot vacated by the one
    //    above it in the same cycle.
    for (unsigned i = height_; i-- > 0;) {
        if (!middleCol_[i].full)
            continue;
        Slot &mid = middleCol_[i];
        if (combining_ && rightCol_[i].full && !matchCol_[i].full &&
            rightCol_[i].item.key == mid.item.key) {
            matchCol_[i] = mid;
            mid.full = false;
        } else if (!rightCol_[i].full) {
            // An item may only hop right if no older item sits higher in
            // the right column (preserves FIFO across drain stalls).
            bool older_above = false;
            for (unsigned j = i + 1; j < height_ && !older_above; ++j)
                older_above = rightCol_[j].full;
            if (!older_above) {
                rightCol_[i] = mid;
                mid.full = false;
            } else if (i + 1 < height_ && !middleCol_[i + 1].full) {
                middleCol_[i + 1] = mid;
                mid.full = false;
            }
        } else if (i + 1 < height_ && !middleCol_[i + 1].full) {
            middleCol_[i + 1] = mid;
            mid.full = false;
        }
        // Otherwise the item stalls in place (queue congested).
    }

    // 4. Accept the new item at the bottom of the middle column.
    if (input && !middleCol_[0].full) {
        middleCol_[0].full = true;
        middleCol_[0].item = *input;
        ++occupancy_;
        result.accepted = true;
    }

    return result;
}

} // namespace ultra::net
