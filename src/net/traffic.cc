#include "traffic.h"

#include "common/log.h"

namespace ultra::net
{

TrafficGenerator::TrafficGenerator(const TrafficConfig &cfg,
                                   PniArray &pni, Network &network)
    : cfg_(cfg), pni_(pni), network_(network),
      generatedPe_(cfg.activePes, 0)
{
    ULTRA_ASSERT(cfg_.activePes <= network.config().numPorts);
    ULTRA_ASSERT(cfg_.rate >= 0.0);
    ULTRA_ASSERT(cfg_.loadFraction + cfg_.storeFraction <= 1.0 + 1e-12);
    ULTRA_ASSERT(cfg_.addrSpaceWords > 0);
    Rng parent(cfg_.seed);
    rngs_.reserve(cfg_.activePes);
    for (std::uint32_t pe = 0; pe < cfg_.activePes; ++pe)
        rngs_.push_back(parent.split());
}

void
TrafficGenerator::generateOne(PEId pe)
{
    Rng &rng = rngs_[pe];
    Op op;
    Addr vaddr;
    Word data = 1;
    if (cfg_.hotFraction > 0.0 && rng.bernoulli(cfg_.hotFraction)) {
        op = Op::FetchAdd;
        vaddr = cfg_.hotAddr;
    } else {
        const double pick = rng.uniformDouble();
        if (pick < cfg_.loadFraction)
            op = Op::Load;
        else if (pick < cfg_.loadFraction + cfg_.storeFraction)
            op = Op::Store;
        else
            op = Op::FetchAdd;
        vaddr = rng.uniformInt(cfg_.addrSpaceWords);
        data = static_cast<Word>(rng.uniformInt(1000));
    }
    pni_.request(pe, op, vaddr, data);
    ++generatedPe_[pe];
}

void
TrafficGenerator::tick()
{
    tickRange(0, cfg_.activePes);
}

void
TrafficGenerator::tickRange(PEId begin, PEId end)
{
    ULTRA_ASSERT(begin <= end && end <= cfg_.activePes);
    for (PEId pe = begin; pe < end; ++pe) {
        if (cfg_.closedLoop) {
            while (pni_.pendingCount(pe) < cfg_.window)
                generateOne(pe);
        } else if (rngs_[pe].bernoulli(cfg_.rate)) {
            generateOne(pe);
        }
    }
}

std::uint64_t
TrafficGenerator::generated() const
{
    std::uint64_t total = 0;
    for (std::uint64_t count : generatedPe_)
        total += count;
    return total;
}

void
TrafficGenerator::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; ++i) {
        tick();
        pni_.tick();
        network_.tick();
    }
}

bool
TrafficGenerator::drain(Cycle max_cycles)
{
    for (Cycle i = 0; i < max_cycles; ++i) {
        if (network_.inFlight() == 0) {
            bool all_idle = true;
            for (PEId pe = 0; pe < cfg_.activePes && all_idle; ++pe)
                all_idle = pni_.idle(pe);
            if (all_idle)
                return true;
        }
        pni_.tick();
        network_.tick();
    }
    return false;
}

} // namespace ultra::net
