/**
 * @file
 * Network messages and their pooled allocation.
 *
 * A message carries one memory request from a PE toward its memory
 * module, or one reply back.  Messages are transmitted as a train of
 * packets: under ByContent sizing (the Table-1 simulation), a message is
 * one packet when it carries no data (load request, store
 * acknowledgement) and dataPackets (three) otherwise; under Uniform
 * sizing every message is exactly m packets, matching the assumptions of
 * the section-4.1 analytic model.
 *
 * Message ids are globally unique for a network's lifetime and are never
 * reused: wait-buffer entries key on the id of the combined (forwarded)
 * request, and a stale key colliding with a recycled id would mis-route
 * a reply.
 */

#ifndef ULTRA_NET_MESSAGE_H
#define ULTRA_NET_MESSAGE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "check/phase_check.h"
#include "common/log.h"
#include "common/types.h"
#include "mem/fetch_phi.h"

namespace ultra::obs
{
struct LatencyRecord;
} // namespace ultra::obs

namespace ultra::net
{

using mem::Op;

/** How message lengths (in packets) are assigned. */
enum class PacketSizing : std::uint8_t {
    Uniform,   //!< every message is m packets (analytic-model assumption)
    ByContent, //!< 1 packet without data, dataPackets with (section 4.2)
};

/** Request-combining behaviour of the switches. */
enum class CombinePolicy : std::uint8_t {
    None,        //!< plain queued message switching, no combining
    Homogeneous, //!< combine only like requests (section 3.3 exposition)
    Full,        //!< also the heterogeneous rules of section 3.1.3
};

/** One request or reply in flight. */
struct Message
{
    std::uint64_t id = 0;        //!< globally unique, never reused
    Op op = Op::Load;
    bool isReply = false;
    Addr paddr = kBadAddr;       //!< physical word address
    Word data = 0;               //!< operand (request) or result (reply)
    PEId origin = 0;             //!< requesting PE (reply routing)
    MMId dest = 0;               //!< destination memory module
    std::uint32_t packets = 1;   //!< length in packets
    std::uint64_t requestId = 0; //!< replies: id of the request answered
    std::uint64_t tag = 0;       //!< opaque cookie for the injecting PNI

    Cycle injectedAt = 0;        //!< network entry time (stats)
    Cycle mniArriveAt = 0;       //!< full receipt at the MNI (stats)
    std::uint32_t timesCombined = 0; //!< requests folded into this one

    /** Pairs absorbed while in the current ToMM queue (pairwise cap). */
    std::uint32_t combinedAtThisQueue = 0;

    /** Pool (StageColumnPlan unit) the slot belongs to.  A message may
     *  die far from home; the merge phase routes it back so frees never
     *  touch a foreign pool during the parallel arrival phase. */
    std::uint32_t poolUnit = 0;

    /** Lifecycle stamps, owned by the LatencyObservatory; null unless
     *  one is attached (see obs/latency.h).  Travels with the message
     *  and parks in a WaitEntry while combined away. */
    obs::LatencyRecord *lat = nullptr;
};

/**
 * Slab allocator for messages.  Slots are recycled but ids are not: every
 * alloc() stamps a fresh id from a monotonic counter.
 *
 * For the sharded network tick each StageColumnPlan unit owns one pool
 * with an interleaved id stream (first_id = unit index + 1, stride =
 * unit count): streams never collide, and because the stream is a pure
 * function of the unit — not of the thread that runs it — allocation
 * order inside a unit yields the same ids for any --threads N.
 *
 * Slab discipline: storage is blocks of kBlockSize slots.  reserve()
 * pre-grows the slab so a steady-state run never allocates in the hot
 * path, and free() asserts the message's poolUnit matches this pool --
 * a packet must always be returned to its *home* slab (the merge phase
 * routes foreign frees back; a direct cross-pool free is a bug the
 * conservation tests hunt).  audit() exposes the slab accounting
 * identity live + free == capacity for those tests.
 */
class MessagePool
{
  public:
    /** Slab accounting snapshot (see audit()). */
    struct Audit
    {
        std::size_t capacity = 0; //!< total slots across all blocks
        std::size_t live = 0;     //!< allocated and not yet freed
        std::size_t freeSlots = 0; //!< on the free list
        bool consistent() const { return live + freeSlots == capacity; }
    };

    explicit MessagePool(std::uint64_t first_id = 1,
                         std::uint64_t stride = 1,
                         std::uint32_t unit = 0)
        : nextId_(first_id), stride_(stride), unit_(unit)
    {
    }

    Message *alloc();
    void free(Message *msg);

    /** Pre-grow the slab to at least @p slots total capacity. */
    void
    reserve(std::size_t slots)
    {
        ULTRA_CHECK_NET_MUTATE("net.pool.reserve", unit_);
        while (capacity() < slots)
            addBlock();
    }

    /** Messages currently live (allocated and not freed). */
    std::size_t liveCount() const { return live_; }

    /** Total alloc() calls over the pool's lifetime (prof counter). */
    std::uint64_t allocCount() const { return allocs_; }

    /** Total slots owned by this pool's slab blocks. */
    std::size_t capacity() const { return blocks_.size() * kBlockSize; }

    /** True when @p msg points into one of this pool's slab blocks. */
    bool
    ownsSlot(const Message *msg) const
    {
        for (const auto &block : blocks_) {
            const Message *base = block.get();
            if (msg >= base && msg < base + kBlockSize)
                return true;
        }
        return false;
    }

    /** Slab accounting snapshot; consistent() must hold at any
     *  sequential point (every slot is either live or free). */
    Audit
    audit() const
    {
        return Audit{capacity(), live_, freeList_.size()};
    }

    /** StageColumnPlan unit this pool serves (0 when unsharded). */
    std::uint32_t unit() const { return unit_; }

  private:
    static constexpr std::size_t kBlockSize = 1024;

    void
    addBlock()
    {
        blocks_.push_back(std::make_unique<Message[]>(kBlockSize));
        Message *block = blocks_.back().get();
        freeList_.reserve(freeList_.size() + kBlockSize);
        for (std::size_t i = kBlockSize; i-- > 0;)
            freeList_.push_back(&block[i]);
    }

    std::vector<std::unique_ptr<Message[]>> blocks_;
    std::vector<Message *> freeList_;
    std::uint64_t nextId_ = 1;
    std::uint64_t stride_ = 1;
    std::uint64_t allocs_ = 0;
    std::uint32_t unit_ = 0;
    std::size_t live_ = 0;
};

inline Message *
MessagePool::alloc()
{
    ULTRA_CHECK_NET_MUTATE("net.pool.alloc", unit_);
    if (freeList_.empty())
        addBlock();
    Message *msg = freeList_.back();
    freeList_.pop_back();
    *msg = Message{};
    msg->id = nextId_;
    nextId_ += stride_;
    msg->poolUnit = unit_;
    ++allocs_;
    ++live_;
    return msg;
}

inline void
MessagePool::free(Message *msg)
{
    ULTRA_CHECK_NET_MUTATE("net.pool.free", unit_);
    ULTRA_ASSERT(msg->poolUnit == unit_,
                 "message freed to a foreign pool (home slab discipline)");
    ULTRA_ASSERT(live_ > 0, "pool free without a matching alloc");
    --live_;
    freeList_.push_back(msg);
}

} // namespace ultra::net

#endif // ULTRA_NET_MESSAGE_H
