/**
 * @file
 * Request-combining rules (sections 3.1.2, 3.1.3, 3.3).
 *
 * When a new request R-new enters a ToMM queue holding a matching
 * request R-old for the same memory location, the pair is merged: R-old
 * is (possibly) rewritten in place, R-new is deleted, and a wait-buffer
 * entry records how to synthesize R-new's reply when R-old's returns.
 * The effected serialization is "R-old immediately followed by R-new"
 * for homogeneous pairs; the heterogeneous rules pick whichever order
 * the paper specifies (e.g. FetchAdd(X,e) + Store(X,f) forwards
 * Store(X, e+f) and satisfies the fetch-and-add with f, i.e. the store
 * serializes first).
 *
 * These rules are pure functions of the two messages so they can be
 * unit-tested exhaustively, independent of switch timing.
 */

#ifndef ULTRA_NET_COMBINING_H
#define ULTRA_NET_COMBINING_H

#include <cstdint>
#include <optional>

#include "net/message.h"
#include "net/wait_buffer.h"

namespace ultra::net
{

/** The outcome of matching R-new against a queued R-old. */
struct CombinePlan
{
    /** R-old's new function and operand after the merge. */
    Op newOldOp = Op::Load;
    Word newOldData = 0;
    /** Extra packets R-old needs (op upgrades under ByContent sizing). */
    std::uint32_t growOldBy = 0;
    /** The wait-buffer record for R-new (waitKey/ids filled by caller). */
    WaitEntry entry;
};

/**
 * Decide whether @p r_new (arriving) can combine with @p r_old (queued)
 * under @p policy.  Addresses must already be known equal; this checks
 * only the op pair.  Returns std::nullopt when the pair is not
 * combinable.
 *
 * @param data_packets Packets of a data-carrying message under
 *                     ByContent sizing (used to size op upgrades);
 *                     pass 0 under Uniform sizing (no growth ever).
 */
std::optional<CombinePlan> planCombine(const Message &r_old,
                                       const Message &r_new,
                                       CombinePolicy policy,
                                       std::uint32_t data_packets);

} // namespace ultra::net

#endif // ULTRA_NET_COMBINING_H
