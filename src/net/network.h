/**
 * @file
 * The complete enhanced Omega network (section 3.1), cycle-stepped.
 *
 * N PEs talk through d identical copies of a D-stage network of k x k
 * combining switches to N memory modules.  The network is message
 * switched and pipelined: a message of L packets holds each traversed
 * link for L cycles, but its head advances one stage per cycle when
 * queues are empty (virtual cut-through), so the unloaded one-way
 * transit is D + 1 hops plus the m - 1 pipe-fill at the destination.
 *
 * Combining happens where a request enters a ToMM queue already holding
 * a matching request; wait buffers record the combined-away requests and
 * replies fission on their way back (section 3.3).  Fetch-and-phi is
 * executed by the MNI at the destination module (section 3.1.3).
 *
 * A "Burroughs mode" reproduces the design the paper argues against
 * (section 3.1.2 factor 3): conflicting requests are killed instead of
 * queued, which limits bandwidth to O(N / log N).
 */

#ifndef ULTRA_NET_NETWORK_H
#define ULTRA_NET_NETWORK_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "mem/memory_system.h"
#include "net/message.h"
#include "net/out_queue.h"
#include "net/routing.h"
#include "net/wait_buffer.h"
#include "par/shard.h"

namespace ultra::obs
{
class EventTrace;
class LatencyObservatory;
class Registry;
} // namespace ultra::obs

namespace ultra::par
{
class TickEngine;
} // namespace ultra::par

namespace ultra::prof
{
class Profiler;
} // namespace ultra::prof

namespace ultra::net
{

/** Simulation parameters of the whole network. */
struct NetSimConfig
{
    /** Ports per side (number of PEs = number of MMs). */
    std::uint32_t numPorts = 64;
    /** Switch degree k. */
    unsigned k = 2;
    /** Packets per message under Uniform sizing (the factor m). */
    unsigned m = 2;
    /** Number of identical network copies d. */
    unsigned d = 1;
    /** Packets of a data-carrying message under ByContent sizing. */
    unsigned dataPackets = 3;
    PacketSizing sizing = PacketSizing::ByContent;
    /** ToMM / ToPE queue capacity in packets (0 = unbounded). */
    std::uint32_t queueCapacityPackets = 15;
    /** Wait-buffer entries per switch (0 = unbounded). */
    std::uint32_t waitBufferCapacity = 0;
    CombinePolicy combinePolicy = CombinePolicy::Homogeneous;
    /** Max pairs a queued request may absorb at one switch (>=1). */
    unsigned maxCombinesPerVisit = 1;
    /** Memory-module access latency in cycles. */
    Cycle mmAccessTime = 2;
    /** MNI pending-queue capacity in packets (0 = unbounded). */
    std::uint32_t mmPendingCapacityPackets = 15;
    /** Kill-on-conflict switches instead of queues (baseline). */
    bool burroughsKill = false;

    /**
     * Target switch-column groups per stage for the sharded network
     * tick (clamped to [1, switches per stage]).  The resulting
     * StageColumnPlan unit count is a pure function of the topology —
     * never of --threads — and the merge phase visits a stage's active
     * columns in canonical ascending order, so simulation behaviour
     * and every statistic are identical for any value; only message-id
     * numbering (which nothing semantic depends on) reflects the
     * partition.  A pure parallelism-granularity knob.  See DESIGN.md
     * "Sharding the network tick".
     */
    unsigned shardGroupTarget = 8;

    /**
     * Use the receiver-pull parallel departure window instead of the
     * legacy sequential sender sweep.  A sequential pre-pass lists
     * every eligible (switch, port) in canonical sweep order on the
     * *receiving* unit's pull list; the window then processes one
     * stage at a time with all receiving units of that stage in
     * parallel.  Because each output port is wired to exactly one
     * next-stage switch, per-queue claim order and per-node inbox
     * order are identical to the sender sweep, so output is
     * byte-identical with the knob on or off (pinned by the departure
     * identity sweep in net_shard_test).  A pure scheduling knob; off
     * reproduces the pre-overhaul sequential merge.
     */
    bool parallelDeparture = true;

    /**
     * Ideal-paracomputer mode (section 2.1): bypass the switches
     * entirely and satisfy every request in one cycle with unlimited
     * concurrency -- the unrealizable reference model the network
     * approximates.  Useful for measuring the cost of physical
     * realizability (bench/paracomputer_gap).
     */
    bool idealParacomputer = false;

    /** Message length in packets for @p op in the given direction. */
    std::uint32_t packetsFor(Op op, bool is_reply) const;

    bool valid() const;
};

/** Aggregate network statistics. */
struct NetStats
{
    std::uint64_t injected = 0;        //!< requests entered
    std::uint64_t mmServed = 0;        //!< requests executed at MMs
    std::uint64_t delivered = 0;       //!< replies handed back to PEs
    std::uint64_t combined = 0;        //!< requests absorbed by combining
    std::uint64_t decombined = 0;      //!< replies synthesized back
    std::uint64_t killed = 0;          //!< Burroughs-mode kills
    std::uint64_t revOverflowPackets = 0; //!< fission slack (see docs)
    std::vector<std::uint64_t> combinesPerStage;

    Accumulator oneWayTransit;  //!< inject -> full receipt at MNI
    Accumulator roundTrip;      //!< inject -> reply receipt at PE
    Accumulator mmQueueWait;    //!< arrival at MNI -> service start
    Accumulator queueLenAtEnqueue; //!< ToMM occupancy seen by arrivals
    /** Round-trip latency distribution (2-cycle bins, for tail
     *  studies: percentile(0.5/0.95/0.99)). */
    Histogram roundTripHist{2, 256};
};

/**
 * The network plus MNIs; PEs (or synthetic traffic sources) sit on top
 * via tryInject() and the delivery callback.
 */
class Network
{
  public:
    /** Reply delivered to the requesting PE. */
    using DeliverFn =
        std::function<void(PEId pe, std::uint64_t tag, Word value)>;
    /** Burroughs-mode kill notification (request must be retried). */
    using KillFn = std::function<void(PEId pe, std::uint64_t tag)>;

    Network(const NetSimConfig &cfg, mem::MemorySystem &memory);
    ~Network();

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    void setDeliverCallback(DeliverFn fn) { deliverFn_ = std::move(fn); }
    void setKillCallback(KillFn fn) { killFn_ = std::move(fn); }

    /**
     * Attempt to inject a request from PE @p pe for physical address
     * @p paddr.  Fails (returns false) when every copy's injection link
     * is busy or the first-stage queue is full.  @p tag is returned
     * verbatim with the reply.  @p queued_at is when the request was
     * queued at its PNI (for latency attribution; kNeverCycle =
     * unknown, e.g. direct test injections).
     */
    bool tryInject(PEId pe, Op op, Addr paddr, Word data,
                   std::uint64_t tag, Cycle queued_at = kNeverCycle);

    /**
     * Advance one cycle.  Always called from the machine's sequential
     * commit phase; internally the cycle is commitPhase() (deliveries),
     * the sequential MNI sweep, the *parallel* per-unit arrival phase
     * (distributed over the attached TickEngine, or an inline sweep of
     * the same units when none is attached), and the sequential merge
     * phase that executes departures and drains per-unit staging in
     * fixed (copy, stage, column) order.  Output is bit-identical for
     * any engine thread count (see DESIGN.md "Sharding the network
     * tick").
     */
    void tick();

    /**
     * Attach (or detach, with nullptr) a fork-join engine for the
     * arrival phase.  Non-owning; the engine must outlive the network
     * or be detached first.  With no engine the same canonical
     * unit-sweep runs inline, so results are byte-identical either way.
     */
    void setTickEngine(par::TickEngine *engine);

    /** The fixed unit partition of the switch grid. */
    const par::StageColumnPlan &shardPlan() const { return plan_; }

    /** Current simulation time in cycles. */
    Cycle now() const { return now_; }

    /** Messages still inside the network or MNIs. */
    std::size_t inFlight() const;

    /**
     * Run until no messages are in flight or @p max_cycles elapse.
     * @return true if drained.
     */
    bool drain(Cycle max_cycles);

    const NetSimConfig &config() const { return cfg_; }
    const OmegaTopology &topology() const { return topo_; }
    const NetStats &stats() const { return stats_; }
    void resetStats();

    // --- observability (ultra::obs) -----------------------------------

    /**
     * Register counters, latency accumulators and live occupancy gauges
     * under "<prefix>." (e.g. "net.injected", "net.stage2.combines",
     * "net.stage2.tomm_pkts").  The registry reads through to this
     * network; resetStats() is reflected immediately.
     */
    void registerStats(obs::Registry &registry,
                       const std::string &prefix) const;

    /**
     * Attach (or detach, with nullptr) an event tracer.  Emits message
     * injects, per-stage link occupancy, combines, decombines, MM
     * service intervals and reply deliveries; detached, each hook is
     * one branch.
     */
    void setEventTrace(obs::EventTrace *trace);

    /**
     * Attach (or detach, with nullptr) a packet-lifecycle latency
     * observatory (obs/latency.h).  Every subsequently injected
     * request gets a pooled record stamped at injection, per-stage
     * queue entry/exit, combine/decombine, MNI receipt, service start
     * and delivery; messages already in flight stay unobserved.
     * Detached, each hook is one null test.  All stamping happens in
     * the network's (sequential) commit phase, so the observatory's
     * aggregates are bit-identical for any host thread count.
     */
    void setLatencyObservatory(obs::LatencyObservatory *lat);

    /**
     * Attach (or detach, with nullptr) a wall-clock profiler
     * (prof/profiler.h).  Times every tick sub-phase (commit, MNI,
     * arrival, the departure pre-pass/sweeps/windows, the staging
     * drain), the stage-rank barrier waits of the departure window,
     * and per-unit load (messages consumed, pool allocations, staging
     * high-water marks).  Purely observational: no simulation state is
     * touched, so output stays byte-identical with it attached.
     */
    void setProfiler(prof::Profiler *prof);

    /** Packets queued right now across one stage's ToMM (or ToPE)
     *  output queues, summed over copies and switches. */
    std::uint64_t stageQueuePackets(unsigned stage, bool to_mm) const;

    /** Wait-buffer entries held right now across one stage. */
    std::uint64_t stageWaitBufferEntries(unsigned stage) const;

    /** Packets pending in all MNI service queues right now. */
    std::uint64_t mniPendingPackets() const;

    /**
     * Diagnostic dump of every nonempty queue, wait buffer and MNI
     * (location, occupancy, head message and its age) -- for debugging
     * stuck or congested configurations.
     */
    std::string dumpState() const;

    /**
     * One switch's ToMM/ToPE queues and wait-buffer entries as a JSON
     * object (for the live inspection protocol, ultra::inspect).  Reads
     * only committed state -- call it between ticks.  Returns "" when
     * (copy, stage, index) is out of range.
     */
    std::string switchJson(unsigned copy, unsigned stage,
                           std::uint32_t index) const;

    /**
     * One MNI's pending service queue as a JSON object; "" when
     * (copy, mm) is out of range.
     */
    std::string mniJson(unsigned copy, MMId mm) const;

    /**
     * Slab accounting snapshot of every per-unit message pool, in unit
     * order (for the conservation tests): each pool's capacity must
     * equal its live + free slots at any sequential point, and with no
     * messages in flight every pool must report live == 0.
     */
    std::vector<MessagePool::Audit> poolAudits() const;

  private:
    struct OutPort
    {
        explicit OutPort(std::uint32_t capacity) : queue(capacity) {}
        OutQueue queue;
        Cycle linkFreeAt = 0;
        /** Open space-claim of this port's head on its downstream
         *  queue (age-fair admission; see OutQueue). */
        std::uint64_t claimId = 0;
        std::uint32_t claimPkts = 0;
        OutQueue *claimTarget = nullptr;
    };

    struct Arrival
    {
        Message *msg;
        Cycle at;
    };

    struct Node
    {
        Node(unsigned k, std::uint32_t qcap, std::uint32_t wbcap);
        std::vector<OutPort> fwd; //!< k ToMM queues
        std::vector<OutPort> rev; //!< k ToPE queues
        WaitBuffer wb;
        std::vector<Arrival> fwdInbox;
        std::vector<Arrival> revInbox;
        bool inList = false; //!< member of its unit's active list
    };

    struct MniState
    {
        explicit MniState(std::uint32_t capacity) : pending(capacity) {}
        OutQueue pending;
        std::vector<Arrival> inbox;
        Cycle serviceFreeAt = 0;
        bool active = false;
        bool inList = false;
        std::uint64_t claimId = 0; //!< reply-space claim (see OutPort)
        std::uint32_t claimPkts = 0;
        OutQueue *claimTarget = nullptr;
    };

    struct Copy
    {
        unsigned index = 0; //!< which of the d copies this is
        std::vector<std::vector<Node>> stage; //!< [stage][switch]
        std::vector<Cycle> peLinkFreeAt;      //!< injection links
        std::vector<MniState> mni;
        std::vector<MMId> activeMnis;
    };

    /** A trace event staged during a parallel phase (arrival or
     *  departure window) and flushed to the (shared) EventTrace in the
     *  merge phase.  span == false is an instant event; span == true a
     *  complete event of duration dur. */
    struct StagedTrace
    {
        std::uint32_t track;
        std::uint32_t tid;
        const char *name;
        Cycle at;
        std::uint64_t id;
        std::uint64_t link;
        Cycle dur = 0;
        bool span = false;
    };

    /** Statistic increments gathered by one unit during one arrival
     *  phase; folded into stats_ in unit order by the merge phase. */
    struct UnitStats
    {
        std::uint64_t combined = 0;
        std::uint64_t decombined = 0;
        std::uint64_t killed = 0;
        std::uint64_t revOverflowPackets = 0;
        std::uint64_t stageCombines = 0; //!< all in the unit's stage
    };

    /**
     * One StageColumnPlan unit: the contiguous switch columns of one
     * stage of one copy that a single engine shard owns during the
     * arrival phase.  Everything a unit's arrival work touches lives
     * here (or in its own nodes): its message pool (interleaved id
     * stream), its active-column list, and staging for every mutation
     * that crosses unit boundaries — message frees, Burroughs kills,
     * trace events, shared statistics.  Staged work drains in the
     * sequential merge phase in unit order, which is what keeps output
     * bit-identical for any thread count.
     */
    /** One eligible upstream (switch, port) on a receiving unit's pull
     *  list for the departure window. */
    struct PullWire
    {
        std::uint32_t sw;
        std::uint32_t port;
    };

    /** A queue-wait observation staged during the departure window and
     *  folded into the latency observatory's histograms/heatmap at
     *  drain time (integer folds: order-independent). */
    struct DepartWait
    {
        bool fwd;
        unsigned stage;
        std::uint32_t sw;
        Cycle wait;
    };

    struct Unit
    {
        unsigned copy = 0;
        unsigned stage = 0;
        par::ShardRange cols;
        MessagePool pool;
        std::vector<std::uint32_t> active; //!< columns with work pending
        UnitStats delta;
        std::vector<double> queueLenSamples; //!< replayed in merge order
        std::vector<Message *> dead;  //!< combined-away, free at merge
        std::vector<Message *> kills; //!< Burroughs arrival kills
        std::vector<StagedTrace> traces;
        std::vector<WaitEntry> matchScratch;
        /** Departure-window worklists: eligible upstream ports wired to
         *  this unit's columns, in canonical sweep order. */
        std::vector<PullWire> fwdPull;
        std::vector<PullWire> revPull;
        std::vector<DepartWait> departWaits;
    };

    Node &nodeAt(Copy &copy, unsigned s, std::uint32_t idx)
    {
        return copy.stage[s][idx];
    }
    Unit &unitAt(unsigned copy, unsigned s, unsigned group)
    {
        return units_[(static_cast<std::size_t>(copy) * topo_.stages() +
                       s) *
                          plan_.groupsPerStage() +
                      group];
    }
    MessagePool &poolOf(const Message *msg)
    {
        return units_[msg->poolUnit].pool;
    }
    void activateNode(Copy &copy, unsigned s, std::uint32_t idx);
    void activateMni(Copy &copy, MMId mm);
    void stageInstant(Unit &unit, std::uint32_t track, std::uint32_t tid,
                      const char *name, std::uint64_t id,
                      std::uint64_t link = 0);
    void stageComplete(Unit &unit, std::uint32_t track,
                       std::uint32_t tid, const char *name, Cycle dur,
                       std::uint64_t id);

    /**
     * Commit half of a cycle: publish last cycle's staged results to
     * their consumers — replies due now reach the PNIs (whose
     * callbacks may enqueue same-cycle re-injections), and ideal-mode
     * requests injected last cycle execute and stage their replies.
     * Runs before computePhase() so every component's compute step
     * sees a consistent "start of cycle" picture.
     */
    void commitPhase();

    /**
     * Parallel half of a cycle: each unit (independently — over the
     * engine's shards, or inline in unit order with no engine) prunes
     * its idle columns and consumes inbox entries due this cycle
     * (arrival, combining search, reply fission).  A unit touches only
     * its own nodes, pool and staging, so units never race.
     */
    void arrivalPhase();
    void arrivalPhaseUnit(Unit &unit);

    /**
     * Second half: departures — forward in stage-descending order,
     * reverse in stage-ascending order, so a downstream dequeue frees
     * space before the upstream sender tries to claim it (bubble-free
     * ripple) — then per-unit staging (frees, kills, traces, stat
     * deltas) drains in unit order.  Claim order on downstream queue
     * space is a pure function of the topology sweep, which is what
     * makes the cycle deterministic for any thread count.
     *
     * With cfg_.parallelDeparture the per-hop departures run as a
     * receiver-pull window: buildPullLists() lists every eligible
     * (switch, port) on the *receiving* unit in canonical sweep order,
     * then departWindow() processes one stage at a time with that
     * stage's receiving units spread over the engine shards (stage
     * barrier between stages).  Each output port is wired to exactly
     * one next-stage switch, so a receiving unit's pulls touch only
     * its own queues/inboxes plus upstream port state no other unit
     * touches — race-free, and byte-identical to the sender sweep.
     * The final forward stage (into the MNIs) and reverse stage 0
     * (deliveries) stay sequential either way.
     */
    void mergePhase();
    void drainUnitStaging();
    void buildPullLists(unsigned start);
    void departWindow(bool forward);
    void execPulls(Unit &unit, bool forward);

    void processMnis(Copy &copy);

    void arriveForward(Unit &unit, std::uint32_t idx, Message *msg);
    void arriveReverse(Unit &unit, std::uint32_t idx, Message *msg);
    void departForward(Copy &copy, unsigned s, std::uint32_t idx,
                       unsigned port);
    void departReverse(Copy &copy, unsigned s, std::uint32_t idx,
                       unsigned port);
    /** Non-final forward hop: stage s -> s + 1 (staged observability;
     *  callable from the departure window's owning shard). */
    void departForwardHop(Copy &copy, unsigned s, std::uint32_t idx,
                          unsigned port);
    /** Reverse hop: stage s -> s - 1 (s >= 1). */
    void departReverseHop(Copy &copy, unsigned s, std::uint32_t idx,
                          unsigned port);

    /** Attempt combining; true when @p msg was absorbed. */
    bool tryCombine(Unit &unit, Node &node, std::uint32_t idx,
                    unsigned port, Message *msg);

    /**
     * Age-fair space acquisition on @p target for the head message of
     * a sender with claim state (@p claim_id, @p claim_pkts,
     * @p claim_target): immediate reservation when possible, else an
     * open claim serviced in FIFO order as space frees.  Returns true
     * once the space is reserved.
     */
    bool acquireSpace(std::uint64_t &claim_id, std::uint32_t &claim_pkts,
                      OutQueue *&claim_target, OutQueue &target,
                      std::uint32_t pkts);

    /** Turn a serviced request into its reply (in place). */
    void makeReply(Message *msg);

    NetSimConfig cfg_;
    OmegaTopology topo_;
    mem::MemorySystem &memory_;
    NetStats stats_;
    struct InjectState
    {
        std::uint64_t claimId = 0;
        std::uint32_t claimPkts = 0;
        OutQueue *claimTarget = nullptr;
        unsigned copy = 0;
    };

    /** Trace lane for a stage's output queues: one tid per port. */
    std::uint32_t traceLane(std::uint32_t sw, unsigned port) const
    {
        return sw * cfg_.k + port;
    }

    obs::EventTrace *trace_ = nullptr;
    obs::LatencyObservatory *lat_ = nullptr;
    prof::Profiler *prof_ = nullptr;
    /** Interned track ids, valid while trace_ != nullptr. */
    std::vector<std::vector<std::uint32_t>> fwdTrack_; //!< [copy][stage]
    std::vector<std::vector<std::uint32_t>> revTrack_; //!< [copy][stage]
    std::uint32_t mmTrack_ = 0;
    std::uint32_t peTrack_ = 0;

    std::vector<Copy> copies_;
    /** Fixed (copy, stage, column-group) partition of the switch grid;
     *  independent of the thread count by construction. */
    par::StageColumnPlan plan_;
    std::vector<Unit> units_;
    /** Engine for the arrival phase (non-owning; null = inline). */
    par::TickEngine *engine_ = nullptr;
    /** Distribution of units over the engine's shards. */
    par::ShardPlan unitShards_;
    /** Distribution of one stage's (copy, group) slots over the
     *  engine's shards for the departure window; stage-agnostic, so a
     *  unit is driven by the same shard in every per-stage dispatch. */
    par::ShardPlan departShards_;
    /** Per-unit active-list length snapshot taken at merge start (so
     *  merge-time activations depart next cycle). */
    std::vector<std::size_t> mergeLen_;
    std::vector<unsigned> nextCopy_; //!< per-PE round-robin cursor
    std::vector<InjectState> injectStates_; //!< per-PE space claims
    Cycle now_ = 0;
    DeliverFn deliverFn_;
    KillFn killFn_;
    std::vector<Arrival> deliveries_;
    /** Ideal-mode requests awaiting their one-cycle completion. */
    std::vector<Arrival> idealPending_;
};

} // namespace ultra::net

#endif // ULTRA_NET_NETWORK_H
