#include "trace.h"

#include <cinttypes>
#include <cstdio>

#include "common/log.h"

namespace ultra::net
{

double
Trace::intensity(std::uint32_t active_pes) const
{
    if (entries.empty() || active_pes == 0)
        return 0.0;
    return static_cast<double>(entries.size()) /
           static_cast<double>(duration()) / active_pes;
}

TraceRecorder::TraceRecorder(PniArray &pni) : pni_(pni)
{
    pni_.setRequestProbe(
        [this](PEId pe, Op op, Addr vaddr, Word data) {
            trace_.entries.push_back(
                {pni_.network().now(), pe, op, vaddr, data});
        });
}

Trace
TraceRecorder::take()
{
    pni_.setRequestProbe(nullptr);
    return std::move(trace_);
}

ReplayResult
replayTrace(const Trace &trace, PniArray &pni, Network &network)
{
    std::size_t next = 0;
    const Cycle offset = network.now();
    while (next < trace.entries.size()) {
        const Cycle local = network.now() - offset;
        while (next < trace.entries.size() &&
               trace.entries[next].at <= local) {
            const TraceEntry &entry = trace.entries[next];
            pni.request(entry.pe, entry.op, entry.vaddr, entry.data);
            ++next;
        }
        pni.tick();
        network.tick();
    }
    // Drain everything still queued or in flight.
    Cycle guard = 0;
    while (network.inFlight() > 0 && guard++ < 10'000'000) {
        pni.tick();
        network.tick();
    }
    bool all_idle = false;
    guard = 0;
    while (!all_idle && guard++ < 10'000'000) {
        all_idle = true;
        for (PEId pe = 0; pe < network.config().numPorts && all_idle;
             ++pe) {
            all_idle = pni.idle(pe);
        }
        if (!all_idle) {
            pni.tick();
            network.tick();
        }
    }
    ULTRA_ASSERT(all_idle, "trace replay did not drain");

    ReplayResult result;
    result.requests = pni.stats().completed;
    result.meanAccessTime = pni.stats().accessTime.mean();
    result.meanOneWay = network.stats().oneWayTransit.mean();
    result.finishedAt = network.now() - offset;
    return result;
}

void
saveTrace(const Trace &trace, const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (!file)
        fatal("cannot open '", path, "' for writing");
    for (const TraceEntry &entry : trace.entries) {
        std::fprintf(file, "%" PRIu64 ",%u,%u,%" PRIu64 ",%" PRId64
                           "\n",
                     static_cast<std::uint64_t>(entry.at), entry.pe,
                     static_cast<unsigned>(entry.op),
                     static_cast<std::uint64_t>(entry.vaddr),
                     static_cast<std::int64_t>(entry.data));
    }
    std::fclose(file);
}

Trace
loadTrace(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "r");
    if (!file)
        fatal("cannot open '", path, "' for reading");
    Trace trace;
    std::uint64_t at = 0, vaddr = 0;
    unsigned pe = 0, op = 0;
    std::int64_t data = 0;
    int line = 0;
    while (std::fscanf(file,
                       "%" SCNu64 ",%u,%u,%" SCNu64 ",%" SCNd64 "\n",
                       &at, &pe, &op, &vaddr, &data) == 5) {
        ++line;
        if (op > static_cast<unsigned>(Op::FetchMin))
            fatal("bad op code at line ", line, " of '", path, "'");
        trace.entries.push_back({at, pe, static_cast<Op>(op), vaddr,
                                 data});
    }
    std::fclose(file);
    return trace;
}

} // namespace ultra::net
