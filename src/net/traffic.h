/**
 * @file
 * Synthetic traffic sources for the network experiments of section 4.
 *
 * The analytic model assumes requests generated at each PE by
 * independent identically distributed time-invariant random processes
 * with MMs equally likely to be referenced; the open-loop generator
 * reproduces exactly that.  The hot-spot generator directs a fraction
 * of the traffic at one shared address (fetch-and-add on a coordination
 * variable), the workload the combining network exists to absorb.
 * Closed-loop mode bounds each PE to a window of outstanding requests,
 * which is how real PEs behave and what the saturation benches use.
 */

#ifndef ULTRA_NET_TRAFFIC_H
#define ULTRA_NET_TRAFFIC_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "net/pni.h"

namespace ultra::net
{

/** Traffic-source parameters. */
struct TrafficConfig
{
    /** PEs generating traffic (the first activePes ports). */
    std::uint32_t activePes = 64;
    /** Open loop: Bernoulli(rate) new requests per PE per cycle. */
    double rate = 0.05;
    /** Closed loop instead: keep @ref window requests in flight. */
    bool closedLoop = false;
    unsigned window = 1;
    /** Fraction of requests aimed at the single hot address. */
    double hotFraction = 0.0;
    Addr hotAddr = 0;
    /** Op mix for background (non-hot) traffic; must sum to <= 1, the
     *  remainder are fetch-and-adds. */
    double loadFraction = 0.4;
    double storeFraction = 0.4;
    /** Hot requests are always fetch-and-adds (coordination traffic). */
    /** Virtual addresses drawn uniformly from [0, addrSpaceWords). */
    std::uint64_t addrSpaceWords = 1 << 20;
    std::uint64_t seed = 1;
};

/** Drives a PniArray with random requests and tracks completions. */
class TrafficGenerator
{
  public:
    TrafficGenerator(const TrafficConfig &cfg, PniArray &pni,
                     Network &network);

    /** Generate this cycle's requests; call before PniArray::tick(). */
    void tick();

    /**
     * Generate this cycle's requests for PEs in [begin, end) only.
     * Each PE draws from its own RNG stream (split off the seed at
     * construction), so any partition of [0, activePes) into ranges --
     * including ranges ticked concurrently by different shards --
     * produces exactly the per-PE request sequences of a full tick().
     * Thread safety requires PniArray::setShardMap with ranges that
     * respect the shard ownership of each PE.
     */
    void tickRange(PEId begin, PEId end);

    std::uint64_t generated() const;

    /**
     * Run the system for @p cycles: generator, PNIs and network each
     * tick once per cycle.
     */
    void run(Cycle cycles);

    /**
     * Stop generating and run until everything completes (or
     * @p max_cycles pass).  @return true when fully drained.
     */
    bool drain(Cycle max_cycles);

  private:
    void generateOne(PEId pe);

    TrafficConfig cfg_;
    PniArray &pni_;
    Network &network_;
    /** One independent stream per active PE: the paper's model wants
     *  i.i.d. per-PE processes, and per-PE streams make the draws
     *  independent of the order PEs are visited in. */
    std::vector<Rng> rngs_;
    /** Per-PE request counts (single-writer under sharded ticking). */
    std::vector<std::uint64_t> generatedPe_;
};

} // namespace ultra::net

#endif // ULTRA_NET_TRAFFIC_H
