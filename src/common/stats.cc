#include "stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "log.h"

namespace ultra
{

void
Accumulator::add(double x)
{
    ++count_;
    if (count_ == 1) {
        mean_ = x;
        min_ = x;
        max_ = x;
        m2_ = 0.0;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
Accumulator::merge(const Accumulator &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
Accumulator::reset()
{
    *this = Accumulator();
}

double
Accumulator::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(std::uint64_t bin_width, std::size_t num_bins)
    : binWidth_(bin_width), bins_(num_bins + 1, 0)
{
    ULTRA_ASSERT(bin_width > 0);
    ULTRA_ASSERT(num_bins > 0);
}

void
Histogram::add(std::uint64_t x)
{
    std::size_t bin = static_cast<std::size_t>(x / binWidth_);
    if (bin >= bins_.size() - 1)
        bin = bins_.size() - 1; // overflow bin
    ++bins_[bin];
    ++total_;
    sum_ += x;
    maxSample_ = std::max(maxSample_, x);
}

void
Histogram::merge(const Histogram &other)
{
    ULTRA_ASSERT(binWidth_ == other.binWidth_ &&
                     bins_.size() == other.bins_.size(),
                 "merging histograms of different shape");
    for (std::size_t i = 0; i < bins_.size(); ++i)
        bins_[i] += other.bins_[i];
    total_ += other.total_;
    sum_ += other.sum_;
    maxSample_ = std::max(maxSample_, other.maxSample_);
}

void
Histogram::reset()
{
    std::fill(bins_.begin(), bins_.end(), 0);
    total_ = 0;
    sum_ = 0;
    maxSample_ = 0;
}

double
Histogram::mean() const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(sum_) / static_cast<double>(total_);
}

std::uint64_t
Histogram::percentile(double q) const
{
    if (total_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    const std::uint64_t target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total_)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        seen += bins_[i];
        if (seen >= target && bins_[i] > 0) {
            if (i == bins_.size() - 1)
                return maxSample_;
            // Upper edge of the bin, a conservative answer.
            return (i + 1) * binWidth_ - 1;
        }
    }
    return maxSample_;
}

std::string
Histogram::render() const
{
    std::ostringstream os;
    const std::uint64_t peak =
        *std::max_element(bins_.begin(), bins_.end());
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (bins_[i] == 0)
            continue;
        const int bar_len = peak
            ? static_cast<int>(40.0 * static_cast<double>(bins_[i]) /
                               static_cast<double>(peak))
            : 0;
        os << '[' << i * binWidth_ << ") " << std::string(bar_len, '#')
           << ' ' << bins_[i] << '\n';
    }
    return os.str();
}

} // namespace ultra
