/**
 * @file
 * Fundamental scalar types shared by every ultra subsystem.
 *
 * The simulator is cycle-stepped: every component advances in units of one
 * network cycle (the switch cycle time of section 3.1.2 of the paper).
 * Processor instruction time and memory-module access time are expressed
 * as multiples of this cycle (the Table-1 configuration uses 2 for both).
 */

#ifndef ULTRA_COMMON_TYPES_H
#define ULTRA_COMMON_TYPES_H

#include <cstdint>
#include <limits>

namespace ultra
{

/** Simulated time, in network cycles. */
using Cycle = std::uint64_t;

/** A machine word stored in central memory (64-bit data, section 4.0). */
using Word = std::int64_t;

/** Address of a word in central (shared) memory. */
using Addr = std::uint64_t;

/** Index of a processing element (0 .. N-1). */
using PEId = std::uint32_t;

/** Index of a memory module (0 .. N-1). */
using MMId = std::uint32_t;

/** Sentinel for "no cycle" / "not yet scheduled". */
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for an invalid address. */
inline constexpr Addr kBadAddr = std::numeric_limits<Addr>::max();

/** True iff @p x is a power of two (and nonzero). */
constexpr bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Base-2 logarithm of a power of two. */
constexpr unsigned
log2Exact(std::uint64_t x)
{
    unsigned lg = 0;
    while (x > 1) {
        x >>= 1;
        ++lg;
    }
    return lg;
}

/** Integer ceil(log_k(n)) for k a power of two; n, k >= 2. */
constexpr unsigned
logBase(std::uint64_t n, std::uint64_t k)
{
    unsigned stages = 0;
    std::uint64_t reach = 1;
    while (reach < n) {
        reach *= k;
        ++stages;
    }
    return stages;
}

} // namespace ultra

#endif // ULTRA_COMMON_TYPES_H
