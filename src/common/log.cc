#include "log.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ultra
{

namespace
{

const char *
prefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

LogSink &
sinkRef()
{
    static LogSink sink;
    return sink;
}

LogLevel &
thresholdRef()
{
    static LogLevel threshold = detail::thresholdFromEnv();
    return threshold;
}

} // namespace

void
setLogSink(LogSink sink)
{
    sinkRef() = std::move(sink);
}

void
setLogThreshold(LogLevel level)
{
    thresholdRef() = level;
}

namespace detail
{

LogLevel
thresholdFromEnv()
{
    const char *env = std::getenv("ULTRA_LOG");
    if (env == nullptr)
        return LogLevel::Inform;
    if (std::strcmp(env, "debug") == 0)
        return LogLevel::Debug;
    if (std::strcmp(env, "warn") == 0)
        return LogLevel::Warn;
    return LogLevel::Inform; // "inform", "info", and anything else
}

bool
debugEnabled()
{
    return thresholdRef() <= LogLevel::Debug;
}

void
log(LogLevel level, const std::string &msg)
{
    // Fatal and Panic always emit; lesser levels respect the threshold.
    if (level < LogLevel::Fatal && level < thresholdRef())
        return;
    const LogSink &sink = sinkRef();
    if (sink) {
        sink(level, msg);
        return;
    }
    std::fprintf(stderr, "%s: %s\n", prefix(level), msg.c_str());
}

void
logAndDie(LogLevel level, const std::string &msg)
{
    log(level, msg);
    if (level == LogLevel::Fatal)
        std::exit(1);
    std::abort();
}

} // namespace detail
} // namespace ultra
