#include "log.h"

#include <cstdio>
#include <cstdlib>

namespace ultra
{
namespace detail
{

namespace
{

const char *
prefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

} // namespace

void
log(LogLevel level, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", prefix(level), msg.c_str());
}

void
logAndDie(LogLevel level, const std::string &msg)
{
    log(level, msg);
    if (level == LogLevel::Fatal)
        std::exit(1);
    std::abort();
}

} // namespace detail
} // namespace ultra
