/**
 * @file
 * Deterministic pseudo-random number generation for simulation.
 *
 * A small xoshiro256** generator: fast, seedable, and stable across
 * platforms, so simulation results are reproducible bit-for-bit.  The
 * standard-library distributions are deliberately avoided because their
 * outputs are implementation-defined.
 */

#ifndef ULTRA_COMMON_RNG_H
#define ULTRA_COMMON_RNG_H

#include <array>
#include <cstdint>

namespace ultra
{

/** Deterministic xoshiro256** pseudo-random generator. */
class Rng
{
  public:
    /** Seed with splitmix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) ; @p bound must be nonzero. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniformDouble();

    /** True with probability @p p. */
    bool bernoulli(double p);

    /**
     * Geometric inter-arrival gap: number of whole cycles until the next
     * success when each cycle succeeds independently with probability
     * @p p (returns 0 if the very next cycle is a success).
     */
    std::uint64_t geometric(double p);

    /** Split off an independently-seeded child stream. */
    Rng split();

  private:
    std::array<std::uint64_t, 4> state_;
};

} // namespace ultra

#endif // ULTRA_COMMON_RNG_H
