#include "table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "log.h"

namespace ultra
{

void
TextTable::setHeader(std::vector<std::string> header)
{
    ULTRA_ASSERT(!header.empty());
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    ULTRA_ASSERT(row.size() == header_.size(),
                 "row width ", row.size(), " != header width ",
                 header_.size());
    rows_.push_back(std::move(row));
}

void
TextTable::addSeparator()
{
    rows_.emplace_back();
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto rule = [&] {
        std::string s = "+";
        for (auto w : widths)
            s += std::string(w + 2, '-') + "+";
        s += "\n";
        return s;
    };
    auto line = [&](const std::vector<std::string> &cells) {
        std::string s = "|";
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &v = c < cells.size() ? cells[c] : "";
            s += " " + std::string(widths[c] - v.size(), ' ') + v + " |";
        }
        s += "\n";
        return s;
    };

    std::string out = rule() + line(header_) + rule();
    for (const auto &row : rows_)
        out += row.empty() ? rule() : line(row);
    out += rule();
    return out;
}

std::string
TextTable::fmt(double x, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, x);
    return buf;
}

std::string
TextTable::pct(double ratio, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, 100.0 * ratio);
    return buf;
}

} // namespace ultra
