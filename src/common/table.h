/**
 * @file
 * ASCII table rendering for the benchmark harnesses.
 *
 * Every reproduction bench prints rows in the same layout as the paper's
 * tables; this helper keeps the formatting in one place.
 */

#ifndef ULTRA_COMMON_TABLE_H
#define ULTRA_COMMON_TABLE_H

#include <string>
#include <vector>

namespace ultra
{

/** A simple right-aligned ASCII table. */
class TextTable
{
  public:
    /** Set the column headers (fixes the column count). */
    void setHeader(std::vector<std::string> header);

    /** Append a row; must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Render with column-aligned padding. */
    std::string render() const;

    /** Format a double with @p digits decimal places. */
    static std::string fmt(double x, int digits = 2);

    /** Format a ratio as a percentage string, e.g. "62%". */
    static std::string pct(double ratio, int digits = 0);

  private:
    std::vector<std::string> header_;
    // Separator rows are stored as empty vectors.
    std::vector<std::vector<std::string>> rows_;
};

} // namespace ultra

#endif // ULTRA_COMMON_TABLE_H
