/**
 * @file
 * Lightweight statistics collection for the simulator.
 *
 * Accumulator tracks count / mean / variance / extremes with Welford's
 * online algorithm; Histogram bins integer samples for latency
 * distributions (used to study the queueing delays of section 4).
 */

#ifndef ULTRA_COMMON_STATS_H
#define ULTRA_COMMON_STATS_H

#include <cstdint>
#include <string>
#include <vector>

namespace ultra
{

/** Online mean / variance / min / max over double samples. */
class Accumulator
{
  public:
    /** Record one sample. */
    void add(double x);

    /** Merge another accumulator's samples into this one. */
    void merge(const Accumulator &other);

    /** Drop all samples. */
    void reset();

    std::uint64_t count() const { return count_; }
    double sum() const { return mean_ * static_cast<double>(count_); }
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Population variance (0 with fewer than 2 samples). */
    double variance() const;
    double stddev() const;

    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-width-bin histogram over nonnegative integer samples. */
class Histogram
{
  public:
    /**
     * @param bin_width Width of each bin.
     * @param num_bins  Number of regular bins; larger samples land in a
     *                  final overflow bin.
     */
    explicit Histogram(std::uint64_t bin_width = 1,
                       std::size_t num_bins = 64);

    void add(std::uint64_t x);

    /** Merge another histogram's samples; shapes must match. */
    void merge(const Histogram &other);

    void reset();

    std::uint64_t count() const { return total_; }
    double mean() const;

    /** Smallest sample value s.t. at least @p q of samples are <= it. */
    std::uint64_t percentile(double q) const;

    /** Count in bin @p i (the last bin is the overflow bin). */
    std::uint64_t binCount(std::size_t i) const { return bins_.at(i); }
    std::size_t numBins() const { return bins_.size(); }
    std::uint64_t binWidth() const { return binWidth_; }

    /** Compact ASCII rendering for debug output. */
    std::string render() const;

  private:
    std::uint64_t binWidth_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t maxSample_ = 0;
};

} // namespace ultra

#endif // ULTRA_COMMON_STATS_H
