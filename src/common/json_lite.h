/**
 * @file
 * Minimal recursive-descent JSON parser for schema checks in tests and
 * offline analysis tools (tools/ultrascope).
 *
 * Parses the full JSON grammar into a tree of JsonValue nodes; any
 * syntax error throws std::runtime_error with the offending offset, so
 * a malformed dump fails the test with a useful message.  Not for
 * production use -- no streaming, no surrogate-pair decoding (escapes
 * are kept verbatim past the basic ones).
 */

#ifndef ULTRA_COMMON_JSON_LITE_H
#define ULTRA_COMMON_JSON_LITE_H

#include <cctype>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace jsonlite
{

struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    bool has(const std::string &key) const
    {
        return type == Type::Object && object.count(key) > 0;
    }

    const JsonValue &operator[](const std::string &key) const
    {
        if (!has(key))
            throw std::runtime_error("missing key: " + key);
        return object.at(key);
    }
};

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing content");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("JSON error at offset " +
                                 std::to_string(pos_) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + peek() +
                 "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        const std::size_t n = std::char_traits<char>::length(lit);
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    JsonValue
    value()
    {
        skipWs();
        JsonValue v;
        const char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"') {
            v.type = JsonValue::Type::String;
            v.string = parseString();
            return v;
        }
        if (consumeLiteral("true")) {
            v.type = JsonValue::Type::Bool;
            v.boolean = true;
            return v;
        }
        if (consumeLiteral("false")) {
            v.type = JsonValue::Type::Bool;
            return v;
        }
        if (consumeLiteral("null"))
            return v;
        return parseNumber();
    }

    JsonValue
    parseObject()
    {
        JsonValue v;
        v.type = JsonValue::Type::Object;
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipWs();
            const std::string key = parseString();
            skipWs();
            expect(':');
            v.object[key] = value();
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray()
    {
        JsonValue v;
        v.type = JsonValue::Type::Array;
        expect('[');
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(value());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u':
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                for (int i = 0; i < 4; ++i) {
                    if (!std::isxdigit(static_cast<unsigned char>(
                            text_[pos_ + i]))) {
                        fail("bad \\u escape");
                    }
                }
                // Kept verbatim; tests only check well-formedness.
                out += "\\u";
                out.append(text_, pos_, 4);
                pos_ += 4;
                break;
              default: fail("unknown escape");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start)
            fail("expected a value");
        JsonValue v;
        v.type = JsonValue::Type::Number;
        try {
            v.number = std::stod(text_.substr(start, pos_ - start));
        } catch (const std::exception &) {
            fail("malformed number");
        }
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

inline JsonValue
parse(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace jsonlite

#endif // ULTRA_COMMON_JSON_LITE_H
