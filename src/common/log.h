/**
 * @file
 * Error and status reporting in the gem5 tradition.
 *
 * panic()  -- an internal simulator invariant was violated (a bug here).
 * fatal()  -- the user asked for an impossible configuration.
 * warn()   -- something is off but simulation can continue.
 * inform() -- plain status output.
 * debug()  -- developer chatter, off unless ULTRA_LOG=debug.
 *
 * Every message flows through one process-wide sink (stderr by
 * default); setLogSink() redirects it, which is how tests capture log
 * output.  The minimum emitted level defaults from the ULTRA_LOG
 * environment variable ("debug", "inform", "warn") and can be
 * overridden with setLogThreshold().
 */

#ifndef ULTRA_COMMON_LOG_H
#define ULTRA_COMMON_LOG_H

#include <functional>
#include <sstream>
#include <string>

namespace ultra
{

/** Severity of a log message, in increasing order. */
enum class LogLevel { Debug, Inform, Warn, Fatal, Panic };

/** Receives every emitted message (after threshold filtering). */
using LogSink = std::function<void(LogLevel, const std::string &)>;

/** Route all log output to @p sink; nullptr restores stderr. */
void setLogSink(LogSink sink);

/** Suppress messages below @p level (Fatal/Panic always emit). */
void setLogThreshold(LogLevel level);

namespace detail
{

/** Emit @p msg at @p level; Fatal exits(1), Panic aborts. */
[[noreturn]] void logAndDie(LogLevel level, const std::string &msg);
void log(LogLevel level, const std::string &msg);

/** True when Debug-level messages pass the current threshold. */
bool debugEnabled();

/** Threshold named by the ULTRA_LOG environment variable right now
 *  (Inform when unset or unrecognized). */
LogLevel thresholdFromEnv();

/** Fold a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Report a simulator bug and abort. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::logAndDie(LogLevel::Panic,
                      detail::concat(std::forward<Args>(args)...));
}

/** Report an unusable user configuration and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::logAndDie(LogLevel::Fatal,
                      detail::concat(std::forward<Args>(args)...));
}

/** Report a suspicious but survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::log(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

/** Report normal status. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::log(LogLevel::Inform,
                detail::concat(std::forward<Args>(args)...));
}

/** Developer diagnostics; free when disabled (no string assembly). */
template <typename... Args>
void
debug(Args &&...args)
{
    if (!detail::debugEnabled())
        return;
    detail::log(LogLevel::Debug,
                detail::concat(std::forward<Args>(args)...));
}

/** panic() unless @p cond holds. */
#define ULTRA_ASSERT(cond, ...)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::ultra::panic("assertion '", #cond, "' failed at ", __FILE__,  \
                           ":", __LINE__, " ", ##__VA_ARGS__);              \
        }                                                                   \
    } while (0)

} // namespace ultra

#endif // ULTRA_COMMON_LOG_H
