/**
 * @file
 * Error and status reporting in the gem5 tradition.
 *
 * panic()  -- an internal simulator invariant was violated (a bug here).
 * fatal()  -- the user asked for an impossible configuration.
 * warn()   -- something is off but simulation can continue.
 * inform() -- plain status output.
 */

#ifndef ULTRA_COMMON_LOG_H
#define ULTRA_COMMON_LOG_H

#include <sstream>
#include <string>

namespace ultra
{

/** Severity of a log message. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

namespace detail
{

/** Emit @p msg at @p level; Fatal exits(1), Panic aborts. */
[[noreturn]] void logAndDie(LogLevel level, const std::string &msg);
void log(LogLevel level, const std::string &msg);

/** Fold a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Report a simulator bug and abort. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::logAndDie(LogLevel::Panic,
                      detail::concat(std::forward<Args>(args)...));
}

/** Report an unusable user configuration and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::logAndDie(LogLevel::Fatal,
                      detail::concat(std::forward<Args>(args)...));
}

/** Report a suspicious but survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::log(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

/** Report normal status. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::log(LogLevel::Inform,
                detail::concat(std::forward<Args>(args)...));
}

/** panic() unless @p cond holds. */
#define ULTRA_ASSERT(cond, ...)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::ultra::panic("assertion '", #cond, "' failed at ", __FILE__,  \
                           ":", __LINE__, " ", ##__VA_ARGS__);              \
        }                                                                   \
    } while (0)

} // namespace ultra

#endif // ULTRA_COMMON_LOG_H
