#include "rng.h"

#include <cmath>

#include "log.h"

namespace ultra
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &w : state_)
        w = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    ULTRA_ASSERT(bound != 0);
    // Rejection sampling to kill modulo bias.
    const std::uint64_t limit = bound * (UINT64_MAX / bound);
    std::uint64_t draw;
    do {
        draw = next();
    } while (draw >= limit);
    return draw % bound;
}

std::int64_t
Rng::uniformRange(std::int64_t lo, std::int64_t hi)
{
    ULTRA_ASSERT(lo <= hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) // whole 64-bit range
        return static_cast<std::int64_t>(next());
    return lo + static_cast<std::int64_t>(uniformInt(span));
}

double
Rng::uniformDouble()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniformDouble() < p;
}

std::uint64_t
Rng::geometric(double p)
{
    ULTRA_ASSERT(p > 0.0 && p <= 1.0);
    if (p >= 1.0)
        return 0;
    const double u = uniformDouble();
    const double g = std::floor(std::log1p(-u) / std::log1p(-p));
    return static_cast<std::uint64_t>(g);
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa5a5a5a5deadbeefULL);
}

} // namespace ultra
