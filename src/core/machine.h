/**
 * @file
 * The assembled NYU Ultracomputer (Figure 1).
 *
 * A Machine owns N processing elements, their PNIs, d copies of the
 * combining Omega network, the MNIs, and N memory modules.  Parallel
 * programs are Task coroutines launched on individual PEs; run() steps
 * PEs, PNIs and the network cycle by cycle until every launched program
 * finishes.
 *
 * The machine appears to the programmer as a paracomputer: a flat
 * shared address space (virtual addresses, hashed across the modules
 * per section 3.1.4) accessed by load / store / fetch-and-add and the
 * other fetch-and-phi special cases.
 */

#ifndef ULTRA_CORE_MACHINE_H
#define ULTRA_CORE_MACHINE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "mem/address_hash.h"
#include "mem/memory_system.h"
#include "net/network.h"
#include "net/pni.h"
#include "obs/latency.h"
#include "obs/registry.h"
#include "obs/sampler.h"
#include "par/shard.h"
#include "par/tick_engine.h"
#include "prof/profiler.h"
#include "pe/pe.h"
#include "pe/task.h"

namespace ultra::obs
{
class EventTrace;
} // namespace ultra::obs

namespace ultra::core
{

/** Whole-machine configuration. */
struct MachineConfig
{
    net::NetSimConfig net;   //!< ports, switches, combining, queues
    net::PniConfig pni;      //!< outstanding-request policy
    pe::PeConfig pe;         //!< instruction timing
    /** Words of central memory per module. */
    std::size_t wordsPerModule = 1 << 16;
    /** Hash virtual addresses across modules (section 3.1.4). */
    bool hashAddresses = true;
    /**
     * Host threads for run()'s compute phase (0 = one per hardware
     * core).  PE coroutine stepping is partitioned across threads;
     * PNI issue, the network, and memory remain a sequential commit
     * phase, so results are bit-identical for every thread count (see
     * DESIGN.md "The compute/commit phase contract").
     */
    unsigned threads = 1;

    /**
     * Distribute the network's arrival phase over the same engine
     * threads (see DESIGN.md "Sharding the network tick").  Off, the
     * network runs the identical unit sweep inline; output is
     * byte-identical either way, so this is purely a speed knob
     * (--net-serial in the CLI for A/B timing).
     */
    bool shardedNetwork = true;

    /** The paper's Table-1 machine: 4096 ports, six stages of 4x4
     *  switches, 15-packet queues, PE instr = MM access = 2 cycles. */
    static MachineConfig paperTable1();

    /** A small machine for tests and examples. */
    static MachineConfig small(std::uint32_t ports = 64, unsigned k = 2);
};

/** The simulated parallel machine. */
class Machine
{
  public:
    /**
     * A parallel program body: receives the PE it runs on.  The machine
     * keeps the callable alive until the PE is relaunched, so coroutine
     * lambdas with captures are safe to pass directly.
     */
    using ProgramFn = std::function<pe::Task(pe::Pe &)>;

    explicit Machine(const MachineConfig &cfg);

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    std::uint32_t numPes() const { return cfg_.net.numPorts; }

    /** Launch @p program on PE @p pe (replacing any finished task). */
    void launch(PEId pe, ProgramFn program);

    /**
     * Add a further hardware-multiprogrammed context to PE @p pe
     * (section 3.5): the new program shares the PE's instruction
     * pipeline with the one(s) already launched and runs whenever they
     * block on memory.
     */
    void launchExtra(PEId pe, ProgramFn program);

    /** Launch @p program on PEs [0, count). */
    void launchAll(std::uint32_t count, const ProgramFn &program);

    /**
     * Run until every launched program finishes or @p max_cycles pass.
     * Either way the run ends at a cycle boundary with observers
     * flushed: blocked contexts' waiting time is credited (see
     * Pe::flushWaits) and the sampler emits a final row, so a timed-out
     * run's stats, samples, and traces cover every simulated cycle.
     * @return true when all programs finished.
     */
    bool run(Cycle max_cycles = 50'000'000);

    /**
     * Install a hook called at the top of every run() iteration -- at
     * the cycle boundary, after the previous cycle's commit phase and
     * before the next compute phase, when no mid-tick state exists.
     * This is the pause fence of the live inspection protocol
     * (ultra::inspect): the hook may block (pausing the simulation) and
     * may read any machine state, but as long as it does not *write*
     * simulation state the run is byte-identical to an unhooked one.
     * Pass nullptr to remove.
     */
    void setCycleHook(std::function<void(Cycle)> hook)
    {
        cycleHook_ = std::move(hook);
    }

    Cycle now() const { return network_.now(); }

    // --- shared-memory setup and inspection (functional, no timing) ---

    /** Allocate @p words consecutive virtual words of shared memory. */
    Addr allocShared(std::size_t words, std::string name = "");

    /** Read a shared word directly (debug / verification). */
    Word peek(Addr vaddr) const;

    /** Write a shared word directly (initialization). */
    void poke(Addr vaddr, Word value);

    // --- component access ---------------------------------------------

    mem::MemorySystem &memory() { return memory_; }
    const mem::AddressHash &addressHash() const { return hash_; }
    net::Network &network() { return network_; }
    net::PniArray &pni() { return pni_; }
    pe::Pe &peAt(PEId pe) { return *pes_[pe]; }

    /** Sum of all PEs' counters (Table-1 aggregation). */
    pe::PeStats aggregatePeStats() const;

    /**
     * Consolidated human-readable run report: PE instruction mix,
     * idle fractions, network combining and latency statistics, and
     * memory-module load balance.  Every number is pulled from the
     * stats registry, so this and statsJson() always agree.
     */
    std::string statsReport() const;

    // --- observability (ultra::obs) -----------------------------------

    /** The machine-wide stats registry ("net.*", "pni.*", "mem.*",
     *  "pe.*", "machine.*"); populated during construction. */
    obs::Registry &registry() { return registry_; }
    const obs::Registry &registry() const { return registry_; }

    /** The time-series sampler ticked by run(); empty until
     *  enableSampling() is called. */
    obs::Sampler &sampler() { return sampler_; }
    const obs::Sampler &sampler() const { return sampler_; }

    /**
     * Sample key occupancy gauges (per-stage ToMM queue fill, wait
     * buffers and combines, PNI outstanding requests, PE idle cycles)
     * every @p every cycles during run().  Pass 0 to disable.
     */
    void enableSampling(Cycle every);

    /** Machine-readable JSON dump of every registered statistic. */
    std::string statsJson() const;

    /** As statsJson(), with explicit key-order / layout control. */
    std::string statsJson(const obs::DumpOptions &opts) const;

    /**
     * Attach a packet-lifecycle latency observatory to the network and
     * register its statistics under "lat.".  Call while the network is
     * quiescent (before run(), or after a completed one plus
     * resetStats); idempotent.  Opt-in: an unenabled machine's stats
     * output is byte-identical to pre-observatory builds.
     */
    void enableLatency();
    bool latencyEnabled() const { return latency_ != nullptr; }

    /** The observatory, or nullptr until enableLatency(). */
    obs::LatencyObservatory *latency() { return latency_.get(); }
    const obs::LatencyObservatory *latency() const
    {
        return latency_.get();
    }

    /**
     * The full latency report as JSON (see --latency-json): the
     * observatory summary plus the merged distribution of per-context
     * PE memory-wait spans.  "{}" until enableLatency().
     */
    std::string latencyJson() const;

    /**
     * Attach a wall-clock self-profiler (see src/prof): per-phase lap
     * timers around the run() loop and the network tick, per-thread
     * work/barrier-wait accounting inside the tick engine, and per-unit
     * load counters.  Call before run(); idempotent.  Opt-in: profiling
     * reads the host clock but writes only to its own report channel,
     * so an unprofiled run (and the simulation content of a profiled
     * one) stays byte-identical.
     */
    void enableProfiling();
    bool profilingEnabled() const { return prof_ != nullptr; }

    /** The profiler, or nullptr until enableProfiling(). */
    prof::Profiler *profiler() { return prof_.get(); }
    const prof::Profiler *profiler() const { return prof_.get(); }

    /**
     * Attach (or detach, with nullptr) a Chrome-trace-event recorder to
     * the network and every PE: message injects, per-stage hops,
     * combines, decombines, MM service, reply deliveries and
     * per-context memory waits all land on it.  When a profiler is also
     * enabled, run() rides periodic prof counter tracks on the same
     * trace (phase seconds, barrier wait) so wall-clock cost lines up
     * with simulated activity in the viewer.
     */
    void attachEventTrace(obs::EventTrace *trace);

    const MachineConfig &config() const { return cfg_; }

  private:
    void registerMachineStats();
    void prepareShards();
    bool stepShard(unsigned shard, Cycle now);
    void flushObservers();

    MachineConfig cfg_;
    mem::MemorySystem memory_;
    mem::AddressHash hash_;
    net::Network network_;
    net::PniArray pni_;
    obs::Registry registry_;
    obs::Sampler sampler_;
    /** Destroyed before network_ (declared later); safe because the
     *  network emits no stamps during destruction. */
    std::unique_ptr<obs::LatencyObservatory> latency_;
    /** Wall-clock self-profiler; null unless enableProfiling(). */
    std::unique_ptr<prof::Profiler> prof_;
    /** Trace last attached via attachEventTrace() (prof counters). */
    obs::EventTrace *eventTrace_ = nullptr;
    Cycle samplePeriod_ = 0;
    Cycle lastSampleAt_ = static_cast<Cycle>(-1);
    /** Cycle-boundary yield point (live inspection pause fence). */
    std::function<void(Cycle)> cycleHook_;

    // --- parallel compute phase (ultra::par) --------------------------
    std::unique_ptr<par::TickEngine> engine_;
    unsigned engineThreads_ = 0;
    /** Launched PEs in ascending id order; shards are contiguous slices
     *  of this list (apps often engage few PEs of a big machine, so
     *  sharding raw PE-id space would leave threads idle). */
    std::vector<PEId> shardPes_;
    par::ShardPlan shardPlan_;
    /** Per-shard "all my PEs finished" flags (single-writer each). */
    std::vector<unsigned char> shardDone_;
    std::vector<std::unique_ptr<pe::Pe>> pes_;
    /** Keeps each PE's program callables (and thus any coroutine-lambda
     *  closures) alive while its tasks run; one entry per context. */
    std::vector<std::vector<std::unique_ptr<ProgramFn>>> programs_;
    std::vector<PEId> launched_;
    Addr nextShared_ = 0;
    std::vector<std::pair<std::string, Addr>> symbols_;
};

} // namespace ultra::core

#endif // ULTRA_CORE_MACHINE_H
