#include "task_pool.h"

#include <algorithm>

namespace ultra::core
{

TaskPool
TaskPool::create(Machine &machine, Word capacity)
{
    TaskPool pool;
    pool.queue = ParallelQueue::create(machine, capacity);
    pool.pending = machine.allocShared(1, "pool.pending");
    pool.executed = machine.allocShared(1, "pool.executed");
    return pool;
}

pe::Task
poolSubmit(pe::Pe &pe, TaskPool pool, Word descriptor)
{
    // Count first so no worker can observe "quiescent" while this
    // task is between the counter and the queue.
    const Word was = co_await pe.fetchAdd(pool.pending, 1);
    (void)was;
    bool overflow = true;
    while (overflow) {
        co_await queueInsert(pe, pool.queue, descriptor, &overflow);
        if (overflow)
            co_await pe.compute(8);
    }
}

pe::Task
poolWorker(pe::Pe &pe, TaskPool pool, PoolHandler handler)
{
    while (true) {
        const Word pending = co_await pe.load(pool.pending);
        if (pending == 0)
            co_return; // nothing queued, nobody executing: quiescent
        bool underflow = false;
        Word descriptor = 0;
        co_await queueDelete(pe, pool.queue, &descriptor, &underflow);
        if (underflow) {
            co_await pe.compute(6); // a task is still executing
            continue;
        }
        co_await handler(pe, descriptor);
        const Word done = co_await pe.fetchAdd(pool.executed, 1);
        (void)done;
        const Word left = co_await pe.fetchAdd(pool.pending, -1);
        (void)left;
    }
}

pe::Task
parallelFor(pe::Pe &pe, Addr counter, Word total, Word chunk,
            RangeBody body)
{
    ULTRA_ASSERT(chunk >= 1);
    while (true) {
        const Word begin = co_await pe.fetchAdd(counter, chunk);
        if (begin >= total)
            co_return;
        const Word end = std::min<Word>(begin + chunk, total);
        co_await body(pe, begin, end);
    }
}

} // namespace ultra::core
