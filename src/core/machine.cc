#include "machine.h"

#include <algorithm>
#include <sstream>

#include "check/phase_check.h"
#include "common/log.h"
#include "common/table.h"
#include "obs/event_trace.h"
#include "obs/json.h"

namespace ultra::core
{

MachineConfig
MachineConfig::paperTable1()
{
    MachineConfig cfg;
    cfg.net.numPorts = 4096;
    cfg.net.k = 4;
    cfg.net.m = 2;
    cfg.net.d = 1;
    cfg.net.sizing = net::PacketSizing::ByContent;
    cfg.net.dataPackets = 3;
    cfg.net.queueCapacityPackets = 15;
    cfg.net.mmPendingCapacityPackets = 15;
    cfg.net.combinePolicy = net::CombinePolicy::Full;
    cfg.net.mmAccessTime = 2;
    cfg.pe.instrTime = 2;
    cfg.wordsPerModule = 1 << 12;
    return cfg;
}

MachineConfig
MachineConfig::small(std::uint32_t ports, unsigned k)
{
    MachineConfig cfg;
    cfg.net.numPorts = ports;
    cfg.net.k = k;
    cfg.net.combinePolicy = net::CombinePolicy::Full;
    cfg.wordsPerModule = 1 << 12;
    return cfg;
}

namespace
{

mem::MemoryConfig
memoryConfigFor(const MachineConfig &cfg)
{
    mem::MemoryConfig mc;
    mc.numModules = cfg.net.numPorts;
    mc.wordsPerModule = cfg.wordsPerModule;
    mc.accessTime = cfg.net.mmAccessTime;
    return mc;
}

/** Simulated cycles between prof counter rows on an event trace:
 *  frequent enough to see phase-cost drift in the viewer, rare enough
 *  to stay invisible in the run's wall clock. */
constexpr Cycle kProfCounterPeriod = 64;

} // namespace

Machine::Machine(const MachineConfig &cfg)
    : cfg_(cfg), memory_(memoryConfigFor(cfg)),
      hash_(log2Exact(memory_.totalWords()), cfg.hashAddresses),
      network_(cfg.net, memory_), pni_(cfg.pni, network_, hash_)
{
    ULTRA_ASSERT(isPowerOfTwo(memory_.totalWords()),
                 "total memory must be a power of two for the hash");
    pes_.reserve(cfg_.net.numPorts);
    for (PEId pe = 0; pe < cfg_.net.numPorts; ++pe) {
        pes_.push_back(std::make_unique<pe::Pe>(pe, cfg_.pe, pni_,
                                                network_));
    }
    programs_.resize(cfg_.net.numPorts);
    pni_.setCompleteCallback(
        [this](PEId pe, std::uint64_t ticket, Word value) {
            pes_[pe]->onComplete(ticket, value);
        });
    registerMachineStats();
}

void
Machine::registerMachineStats()
{
    network_.registerStats(registry_, "net");
    pni_.registerStats(registry_, "pni");
    memory_.registerStats(registry_, "mem");

    registry_.addScalar("machine.pes_engaged",
                        [this] {
                            return static_cast<double>(launched_.size());
                        },
                        "PEs with a launched program");
    auto peTotal = [this](std::uint64_t pe::PeStats::*field) {
        return [this, field] {
            std::uint64_t total = 0;
            for (PEId pe : launched_)
                total += pes_[pe]->stats().*field;
            return static_cast<double>(total);
        };
    };
    registry_.addScalar("pe.instructions",
                        peTotal(&pe::PeStats::instructions),
                        "instructions executed (all engaged PEs)");
    registry_.addScalar("pe.shared_refs",
                        peTotal(&pe::PeStats::sharedRefs),
                        "central-memory references");
    registry_.addScalar("pe.shared_loads",
                        peTotal(&pe::PeStats::sharedLoads),
                        "central-memory loads");
    registry_.addScalar("pe.private_refs",
                        peTotal(&pe::PeStats::privateRefs),
                        "cache-hit data references");
    registry_.addScalar("pe.busy_cycles",
                        peTotal(&pe::PeStats::busyCycles),
                        "pipeline cycles executing instructions");
    registry_.addScalar("pe.idle_cycles",
                        peTotal(&pe::PeStats::idleCycles),
                        "per-context cycles waiting on memory");
    registry_.addScalar("check.violations",
                        [] {
                            return static_cast<double>(
                                check::PhaseChecker::instance()
                                    .violationCount());
                        },
                        "phase-contract violations recorded");
}

void
Machine::launch(PEId pe, ProgramFn program)
{
    ULTRA_ASSERT(pe < pes_.size(), "no such PE: ", pe);
    ULTRA_ASSERT(!pes_[pe]->hasTask() || pes_[pe]->finished(),
                 "PE ", pe, " is still running a program");
    // Pin the callable first: a coroutine lambda's frame references its
    // closure object, which must outlive the task.
    pes_[pe]->setTask(pe::Task{}); // drop the old frames first
    programs_[pe].clear();
    programs_[pe].push_back(
        std::make_unique<ProgramFn>(std::move(program)));
    pes_[pe]->setTask((*programs_[pe].front())(*pes_[pe]));
    if (std::find(launched_.begin(), launched_.end(), pe) ==
        launched_.end()) {
        launched_.push_back(pe);
    }
}

void
Machine::launchExtra(PEId pe, ProgramFn program)
{
    ULTRA_ASSERT(pe < pes_.size(), "no such PE: ", pe);
    ULTRA_ASSERT(pes_[pe]->hasTask(),
                 "launchExtra needs a primary program; call launch() "
                 "first");
    programs_[pe].push_back(
        std::make_unique<ProgramFn>(std::move(program)));
    pes_[pe]->addTask((*programs_[pe].back())(*pes_[pe]));
    if (std::find(launched_.begin(), launched_.end(), pe) ==
        launched_.end()) {
        launched_.push_back(pe);
    }
}

void
Machine::launchAll(std::uint32_t count, const ProgramFn &program)
{
    ULTRA_ASSERT(count <= numPes());
    for (PEId pe = 0; pe < count; ++pe)
        launch(pe, program);
}

void
Machine::prepareShards()
{
    // Shard the *launched* PE list, not PE-id space: programs often
    // engage a handful of PEs on a large machine, and raw-id sharding
    // would park every busy PE in shard 0.
    shardPes_ = launched_;
    std::sort(shardPes_.begin(), shardPes_.end());

    // The engine serves both the PE compute phase and the network's
    // arrival phase, so it is NOT clamped to the launched-PE count: a
    // one-PE program on a big machine still profits from sharded switch
    // simulation (excess PE shards are just empty ranges).
    unsigned threads = par::TickEngine::resolveThreads(cfg_.threads);
    // A request probe observes every request() in call order, which is
    // not deterministic under parallel stepping; keep such runs serial.
    if (pni_.hasRequestProbe())
        threads = 1;
    if (threads == 0)
        threads = 1;

    if (engineThreads_ != threads) {
        engine_ = std::make_unique<par::TickEngine>(threads);
        engineThreads_ = threads;
    }
    network_.setTickEngine(cfg_.shardedNetwork ? engine_.get()
                                               : nullptr);
    if (prof_) {
        engine_->setProfiler(prof_.get());
        network_.setProfiler(prof_.get());
    }
    shardPlan_ = par::ShardPlan::contiguous(shardPes_.size(), threads);
    shardDone_.assign(threads, 0);

    std::vector<unsigned> shard_of(numPes(), 0);
    for (std::size_t i = 0; i < shardPes_.size(); ++i)
        shard_of[shardPes_[i]] = shardPlan_.shardOf(i);
    ULTRA_CHECK_SET_OWNERS(threads, shard_of);
    pni_.setShardMap(threads, std::move(shard_of));
}

bool
Machine::stepShard(unsigned shard, Cycle now)
{
    const par::ShardRange range = shardPlan_.range(shard);
    bool all_done = true;
    for (std::size_t i = range.begin; i < range.end; ++i) {
        pe::Pe &pe = *pes_[shardPes_[i]];
        if (pe.runnable(now))
            pe.step(now);
        all_done = all_done && pe.finished();
    }
    return all_done;
}

void
Machine::flushObservers()
{
    for (PEId pe : launched_)
        pes_[pe]->flushWaits(now());
    if (samplePeriod_ != 0 && sampler_.numColumns() > 0 &&
        lastSampleAt_ != now()) {
        sampler_.sample(now());
        lastSampleAt_ = now();
    }
}

bool
Machine::run(Cycle max_cycles)
{
    prepareShards();
    prof::Profiler *const prof = prof_.get();
    if (prof != nullptr)
        prof->runBegin();
    // Lap clock for phase attribution: each boundary stamps once and
    // charges the span since the previous stamp, so the phase times
    // tile the loop's wall clock with no double counting.  The network
    // laps its own sub-phases internally; we only re-stamp after it.
    std::uint64_t mark = prof != nullptr ? prof::Profiler::nowNs() : 0;
    const auto lap = [&](prof::Phase p) {
        if (prof == nullptr)
            return;
        const std::uint64_t next = prof::Profiler::nowNs();
        prof->phaseAdd(p, next - mark);
        mark = next;
    };
    const Cycle deadline = now() + max_cycles;
    bool finished_all = false;
    while (now() < deadline) {
        // Cycle-boundary yield point: the previous cycle is fully
        // committed and the next compute phase has not started, so a
        // hook (the live-inspection pause fence) observes only
        // consistent state and may block here indefinitely.
        if (cycleHook_)
            cycleHook_(now());
        lap(prof::Phase::Hook);
        // Compute phase: step PE coroutines, one shard per thread.
        // Each shard touches only its own PEs' state and the PNI
        // staging its shard owns; everything else this phase reads
        // (now(), memory peeked before the run) is frozen.
        const Cycle cycle = now();
        if (prof != nullptr)
            prof->setEpisodePhase(prof::Phase::PeCompute);
        ULTRA_CHECK_COMPUTE_BEGIN(cycle);
        try {
            engine_->forEachShard([this, cycle](unsigned shard) {
                shardDone_[shard] = stepShard(shard, cycle) ? 1 : 0;
            });
        } catch (...) {
            ULTRA_CHECK_COMPUTE_END();
            throw;
        }
        ULTRA_CHECK_COMPUTE_END();
        lap(prof::Phase::PeCompute);
        finished_all = true;
        for (unsigned char done : shardDone_)
            finished_all = finished_all && done != 0;
        if (finished_all)
            break;
        // Commit phase (sequential): staged requests issue in PE-id
        // order, the network and memory advance, observers sample.
        pni_.tick();
        lap(prof::Phase::Pni);
        network_.tick();
        if (prof != nullptr)
            mark = prof::Profiler::nowNs();
        if (samplePeriod_ != 0 && now() % samplePeriod_ == 0) {
            sampler_.sample(now());
            lastSampleAt_ = now();
        }
        lap(prof::Phase::Sampler);
        if (prof != nullptr && eventTrace_ != nullptr &&
            now() % kProfCounterPeriod == 0)
            prof->flushCounters(*eventTrace_, now());
    }
    flushObservers();
    lap(prof::Phase::Sampler);
    if (prof != nullptr)
        prof->runEnd(now());
    return finished_all;
}

void
Machine::enableSampling(Cycle every)
{
    samplePeriod_ = every;
    if (every == 0 || sampler_.numColumns() > 0)
        return;
    for (unsigned s = 0; s < network_.topology().stages(); ++s) {
        const std::string stage = "net.stage" + std::to_string(s) + ".";
        sampler_.addRegistryColumn(registry_, stage + "tomm_pkts");
        sampler_.addRegistryColumn(registry_, stage + "wb_entries");
        sampler_.addRegistryColumn(registry_, stage + "combines");
    }
    sampler_.addRegistryColumn(registry_, "pni.outstanding");
    sampler_.addRegistryColumn(registry_, "pe.idle_cycles");
}

std::string
Machine::statsJson() const
{
    return registry_.jsonDump(now());
}

std::string
Machine::statsJson(const obs::DumpOptions &opts) const
{
    return registry_.jsonDump(now(), opts);
}

void
Machine::enableLatency()
{
    if (latency_)
        return;
    obs::LatencyShape shape;
    shape.stages = network_.topology().stages();
    shape.switchesPerStage = network_.topology().switchesPerStage();
    shape.mmAccessTime = cfg_.net.mmAccessTime;
    latency_ = std::make_unique<obs::LatencyObservatory>(shape);
    network_.setLatencyObservatory(latency_.get());
    latency_->registerStats(registry_, "lat");
}

void
Machine::enableProfiling()
{
    if (prof_)
        return;
    prof_ = std::make_unique<prof::Profiler>();
    // Wiring to the engine and network happens in prepareShards(),
    // which also re-runs on thread-count changes between runs.
}

std::string
Machine::latencyJson() const
{
    if (!latency_)
        return "{}";
    Histogram pe_wait{2, 128};
    for (const auto &pe : pes_)
        pe_wait.merge(pe->waitHist());
    std::ostringstream os;
    const std::string summary = latency_->summaryJson();
    // Splice the merged PE-wait distribution into the summary object.
    os << summary.substr(0, summary.rfind('}')) << ", \"pe_wait\": ";
    obs::writeJsonHistogram(os, pe_wait);
    os << "}";
    return os.str();
}

void
Machine::attachEventTrace(obs::EventTrace *trace)
{
    eventTrace_ = trace;
    network_.setEventTrace(trace);
    const std::uint32_t pe_track = trace ? trace->track("pe") : 0;
    for (auto &pe : pes_)
        pe->setEventTrace(trace, pe_track);
}

Addr
Machine::allocShared(std::size_t words, std::string name)
{
    ULTRA_ASSERT(words > 0);
    ULTRA_ASSERT(nextShared_ + words <= memory_.totalWords(),
                 "shared memory exhausted allocating '", name, "'");
    const Addr base = nextShared_;
    nextShared_ += words;
    if (!name.empty())
        symbols_.emplace_back(std::move(name), base);
    return base;
}

Word
Machine::peek(Addr vaddr) const
{
    return memory_.peek(hash_.toPhysical(vaddr));
}

void
Machine::poke(Addr vaddr, Word value)
{
    memory_.poke(hash_.toPhysical(vaddr), value);
}

pe::PeStats
Machine::aggregatePeStats() const
{
    pe::PeStats total;
    for (PEId pe : launched_) {
        const pe::PeStats &s = pes_[pe]->stats();
        total.instructions += s.instructions;
        total.sharedRefs += s.sharedRefs;
        total.sharedLoads += s.sharedLoads;
        total.privateRefs += s.privateRefs;
        total.idleCycles += s.idleCycles;
        total.busyCycles += s.busyCycles;
    }
    return total;
}

std::string
Machine::statsReport() const
{
    // Every number below reads through the registry, so this report,
    // statsJson() and any sampled series all agree by construction.
    auto v = [this](const char *path) { return registry_.value(path); };
    auto u = [&](const char *path) {
        return static_cast<std::uint64_t>(v(path));
    };

    std::ostringstream os;
    const double cycles = static_cast<double>(now());
    const double pes = v("machine.pes_engaged");
    const std::uint64_t instructions = u("pe.instructions");
    os << "=== machine report @ cycle " << now() << " ("
       << u("machine.pes_engaged") << " PEs engaged) ===\n";
    if (instructions > 0) {
        const double shared = v("pe.shared_refs");
        const double priv = v("pe.private_refs");
        os << "PEs: " << instructions << " instructions, "
           << u("pe.shared_refs") << " shared refs ("
           << u("pe.shared_loads") << " loads), " << u("pe.private_refs")
           << " private refs\n";
        os << "  mem refs/instr "
           << TextTable::fmt((shared + priv) /
                                 static_cast<double>(instructions),
                             3)
           << ", shared/instr "
           << TextTable::fmt(shared / static_cast<double>(instructions),
                             3)
           << ", busy "
           << TextTable::pct(pes > 0 && cycles > 0
                                 ? v("pe.busy_cycles") / (cycles * pes)
                                 : 0.0)
           << ", context waiting "
           << TextTable::pct(pes > 0 && cycles > 0
                                 ? v("pe.idle_cycles") / (cycles * pes)
                                 : 0.0)
           << "\n";
    }
    const std::uint64_t injected = u("net.injected");
    const std::uint64_t combined = u("net.combined");
    os << "network: " << injected << " injected, " << combined
       << " combined";
    if (injected > 0) {
        os << " (" << TextTable::pct(static_cast<double>(combined) /
                                     static_cast<double>(injected))
           << ")";
    }
    os << ", " << u("net.mm_served") << " memory accesses, "
       << u("net.killed") << " killed\n";
    if (combined > 0) {
        os << "  combines by stage:";
        for (unsigned s = 0; s < network_.topology().stages(); ++s) {
            os << " s" << s << " "
               << static_cast<std::uint64_t>(registry_.value(
                      "net.stage" + std::to_string(s) + ".combines"));
        }
        os << "\n";
    }
    const Accumulator &rt = registry_.accumulator("net.round_trip");
    if (rt.count() > 0) {
        const Histogram &rth =
            registry_.histogram("net.round_trip_hist");
        os << "  round trip mean " << TextTable::fmt(rt.mean(), 1)
           << " cycles, p50 " << rth.percentile(0.5) << ", p95 "
           << rth.percentile(0.95) << ", p99 " << rth.percentile(0.99)
           << "\n";
    }
    const Accumulator &access = registry_.accumulator("pni.access_time");
    if (u("pni.completed") > 0) {
        os << "PNI: " << u("pni.completed")
           << " completed, access mean "
           << TextTable::fmt(access.mean(), 1) << " cycles (max "
           << TextTable::fmt(access.max(), 0) << ")\n";
    }
    // Memory-module balance: hot/mean ratio over modules with load.
    if (u("mem.executed") > 0) {
        os << "memory: hottest module carried "
           << TextTable::fmt(v("mem.imbalance"), 2)
           << "x the mean load\n";
    }
    return os.str();
}

} // namespace ultra::core
