#include "machine.h"

#include <algorithm>
#include <sstream>

#include "common/log.h"
#include "common/table.h"

namespace ultra::core
{

MachineConfig
MachineConfig::paperTable1()
{
    MachineConfig cfg;
    cfg.net.numPorts = 4096;
    cfg.net.k = 4;
    cfg.net.m = 2;
    cfg.net.d = 1;
    cfg.net.sizing = net::PacketSizing::ByContent;
    cfg.net.dataPackets = 3;
    cfg.net.queueCapacityPackets = 15;
    cfg.net.mmPendingCapacityPackets = 15;
    cfg.net.combinePolicy = net::CombinePolicy::Full;
    cfg.net.mmAccessTime = 2;
    cfg.pe.instrTime = 2;
    cfg.wordsPerModule = 1 << 12;
    return cfg;
}

MachineConfig
MachineConfig::small(std::uint32_t ports, unsigned k)
{
    MachineConfig cfg;
    cfg.net.numPorts = ports;
    cfg.net.k = k;
    cfg.net.combinePolicy = net::CombinePolicy::Full;
    cfg.wordsPerModule = 1 << 12;
    return cfg;
}

namespace
{

mem::MemoryConfig
memoryConfigFor(const MachineConfig &cfg)
{
    mem::MemoryConfig mc;
    mc.numModules = cfg.net.numPorts;
    mc.wordsPerModule = cfg.wordsPerModule;
    mc.accessTime = cfg.net.mmAccessTime;
    return mc;
}

} // namespace

Machine::Machine(const MachineConfig &cfg)
    : cfg_(cfg), memory_(memoryConfigFor(cfg)),
      hash_(log2Exact(memory_.totalWords()), cfg.hashAddresses),
      network_(cfg.net, memory_), pni_(cfg.pni, network_, hash_)
{
    ULTRA_ASSERT(isPowerOfTwo(memory_.totalWords()),
                 "total memory must be a power of two for the hash");
    pes_.reserve(cfg_.net.numPorts);
    for (PEId pe = 0; pe < cfg_.net.numPorts; ++pe) {
        pes_.push_back(std::make_unique<pe::Pe>(pe, cfg_.pe, pni_,
                                                network_));
    }
    programs_.resize(cfg_.net.numPorts);
    pni_.setCompleteCallback(
        [this](PEId pe, std::uint64_t ticket, Word value) {
            pes_[pe]->onComplete(ticket, value);
        });
}

void
Machine::launch(PEId pe, ProgramFn program)
{
    ULTRA_ASSERT(pe < pes_.size(), "no such PE: ", pe);
    ULTRA_ASSERT(!pes_[pe]->hasTask() || pes_[pe]->finished(),
                 "PE ", pe, " is still running a program");
    // Pin the callable first: a coroutine lambda's frame references its
    // closure object, which must outlive the task.
    pes_[pe]->setTask(pe::Task{}); // drop the old frames first
    programs_[pe].clear();
    programs_[pe].push_back(
        std::make_unique<ProgramFn>(std::move(program)));
    pes_[pe]->setTask((*programs_[pe].front())(*pes_[pe]));
    if (std::find(launched_.begin(), launched_.end(), pe) ==
        launched_.end()) {
        launched_.push_back(pe);
    }
}

void
Machine::launchExtra(PEId pe, ProgramFn program)
{
    ULTRA_ASSERT(pe < pes_.size(), "no such PE: ", pe);
    ULTRA_ASSERT(pes_[pe]->hasTask(),
                 "launchExtra needs a primary program; call launch() "
                 "first");
    programs_[pe].push_back(
        std::make_unique<ProgramFn>(std::move(program)));
    pes_[pe]->addTask((*programs_[pe].back())(*pes_[pe]));
    if (std::find(launched_.begin(), launched_.end(), pe) ==
        launched_.end()) {
        launched_.push_back(pe);
    }
}

void
Machine::launchAll(std::uint32_t count, const ProgramFn &program)
{
    ULTRA_ASSERT(count <= numPes());
    for (PEId pe = 0; pe < count; ++pe)
        launch(pe, program);
}

bool
Machine::run(Cycle max_cycles)
{
    const Cycle deadline = now() + max_cycles;
    while (now() < deadline) {
        bool all_done = true;
        for (PEId pe : launched_) {
            if (pes_[pe]->runnable(now()))
                pes_[pe]->step(now());
            all_done = all_done && pes_[pe]->finished();
        }
        if (all_done)
            return true;
        pni_.tick();
        network_.tick();
    }
    return false;
}

Addr
Machine::allocShared(std::size_t words, std::string name)
{
    ULTRA_ASSERT(words > 0);
    ULTRA_ASSERT(nextShared_ + words <= memory_.totalWords(),
                 "shared memory exhausted allocating '", name, "'");
    const Addr base = nextShared_;
    nextShared_ += words;
    if (!name.empty())
        symbols_.emplace_back(std::move(name), base);
    return base;
}

Word
Machine::peek(Addr vaddr) const
{
    return memory_.peek(hash_.toPhysical(vaddr));
}

void
Machine::poke(Addr vaddr, Word value)
{
    memory_.poke(hash_.toPhysical(vaddr), value);
}

pe::PeStats
Machine::aggregatePeStats() const
{
    pe::PeStats total;
    for (PEId pe : launched_) {
        const pe::PeStats &s = pes_[pe]->stats();
        total.instructions += s.instructions;
        total.sharedRefs += s.sharedRefs;
        total.sharedLoads += s.sharedLoads;
        total.privateRefs += s.privateRefs;
        total.idleCycles += s.idleCycles;
        total.busyCycles += s.busyCycles;
    }
    return total;
}

std::string
Machine::statsReport() const
{
    std::ostringstream os;
    const pe::PeStats totals = aggregatePeStats();
    const double cycles = static_cast<double>(now());
    const double pes = static_cast<double>(launched_.size());
    os << "=== machine report @ cycle " << now() << " ("
       << launched_.size() << " PEs engaged) ===\n";
    if (totals.instructions > 0) {
        os << "PEs: " << totals.instructions << " instructions, "
           << totals.sharedRefs << " shared refs ("
           << totals.sharedLoads << " loads), " << totals.privateRefs
           << " private refs\n";
        os << "  mem refs/instr "
           << TextTable::fmt(
                  static_cast<double>(totals.sharedRefs +
                                      totals.privateRefs) /
                      static_cast<double>(totals.instructions),
                  3)
           << ", shared/instr "
           << TextTable::fmt(static_cast<double>(totals.sharedRefs) /
                                 static_cast<double>(
                                     totals.instructions),
                             3)
           << ", busy "
           << TextTable::pct(pes > 0 && cycles > 0
                                 ? static_cast<double>(
                                       totals.busyCycles) /
                                       (cycles * pes)
                                 : 0.0)
           << ", context waiting "
           << TextTable::pct(pes > 0 && cycles > 0
                                 ? static_cast<double>(
                                       totals.idleCycles) /
                                       (cycles * pes)
                                 : 0.0)
           << "\n";
    }
    const net::NetStats &ns = network_.stats();
    os << "network: " << ns.injected << " injected, " << ns.combined
       << " combined";
    if (ns.injected > 0) {
        os << " (" << TextTable::pct(static_cast<double>(ns.combined) /
                                     static_cast<double>(ns.injected))
           << ")";
    }
    os << ", " << ns.mmServed << " memory accesses, " << ns.killed
       << " killed\n";
    if (ns.roundTrip.count() > 0) {
        os << "  round trip mean "
           << TextTable::fmt(ns.roundTrip.mean(), 1) << " cycles, p50 "
           << ns.roundTripHist.percentile(0.5) << ", p95 "
           << ns.roundTripHist.percentile(0.95) << ", p99 "
           << ns.roundTripHist.percentile(0.99) << "\n";
    }
    const net::PniStats &ps = pni_.stats();
    if (ps.completed > 0) {
        os << "PNI: " << ps.completed << " completed, access mean "
           << TextTable::fmt(ps.accessTime.mean(), 1)
           << " cycles (max " << TextTable::fmt(ps.accessTime.max(), 0)
           << ")\n";
    }
    // Memory-module balance: hot/mean ratio over modules with load.
    const auto &loads = memory_.moduleLoad();
    std::uint64_t peak = 0, total = 0;
    for (std::uint64_t l : loads) {
        peak = std::max(peak, l);
        total += l;
    }
    if (total > 0) {
        os << "memory: hottest module carried "
           << TextTable::fmt(static_cast<double>(peak) * loads.size() /
                                 static_cast<double>(total),
                             2)
           << "x the mean load\n";
    }
    return os.str();
}

} // namespace ultra::core
