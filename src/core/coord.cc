#include "coord.h"

namespace ultra::core
{

namespace
{

/** Cycles of local work between polls of a shared flag. */
constexpr std::uint64_t kPollBackoffInstr = 4;

} // namespace

ParallelQueue
ParallelQueue::create(Machine &machine, Word size)
{
    ULTRA_ASSERT(size > 0);
    ParallelQueue queue;
    queue.size = size;
    const std::size_t n = static_cast<std::size_t>(size);
    queue.data = machine.allocShared(n, "queue.data");
    queue.insPtr = machine.allocShared(1, "queue.I");
    queue.delPtr = machine.allocShared(1, "queue.D");
    queue.lower = machine.allocShared(1, "queue.#Qi");
    queue.upper = machine.allocShared(1, "queue.#Qu");
    queue.insSeq = machine.allocShared(n, "queue.insSeq");
    queue.delSeq = machine.allocShared(n, "queue.delSeq");
    return queue;
}

pe::Task
tirTask(pe::Pe &pe, Addr s, Word delta, Word bound, bool *ok_out)
{
    // Initial test: without it, failed attempts under heavy contention
    // would let S drift arbitrarily far past the bound (the "race
    // conditions" remark in the appendix).
    const Word current = co_await pe.load(s);
    if (current + delta > bound) {
        *ok_out = false;
        co_return;
    }
    const Word old_value = co_await pe.fetchAdd(s, delta);
    if (old_value + delta <= bound) {
        *ok_out = true;
        co_return;
    }
    const Word undone = co_await pe.fetchAdd(s, -delta);
    (void)undone;
    *ok_out = false;
}

pe::Task
tdrTask(pe::Pe &pe, Addr s, Word delta, bool *ok_out)
{
    const Word current = co_await pe.load(s);
    if (current - delta < 0) {
        *ok_out = false;
        co_return;
    }
    const Word old_value = co_await pe.fetchAdd(s, -delta);
    if (old_value - delta >= 0) {
        *ok_out = true;
        co_return;
    }
    const Word undone = co_await pe.fetchAdd(s, delta);
    (void)undone;
    *ok_out = false;
}

pe::Task
queueInsert(pe::Pe &pe, ParallelQueue queue, Word value,
            bool *overflow_out)
{
    bool claimed = false;
    co_await tirTask(pe, queue.upper, 1, queue.size, &claimed);
    if (!claimed) {
        *overflow_out = true;
        co_return;
    }
    const Word my = co_await pe.fetchAdd(queue.insPtr, 1);
    const Word cell = my % queue.size;
    const Word round = my / queue.size;
    // Wait turn at MyI: cell must have been emptied `round` times.
    // (Awaits are hoisted out of loop conditions throughout this file;
    // see the GCC note in pe/task.h.)
    while (true) {
        const Word emptied = co_await pe.load(queue.delSeq + cell);
        if (emptied >= round)
            break;
        co_await pe.compute(kPollBackoffInstr);
    }
    co_await pe.store(queue.data + cell, value);
    co_await pe.store(queue.insSeq + cell, round + 1);
    const Word was = co_await pe.fetchAdd(queue.lower, 1);
    (void)was;
    *overflow_out = false;
}

pe::Task
queueDelete(pe::Pe &pe, ParallelQueue queue, Word *value_out,
            bool *underflow_out)
{
    bool claimed = false;
    co_await tdrTask(pe, queue.lower, 1, &claimed);
    if (!claimed) {
        *underflow_out = true;
        co_return;
    }
    const Word my = co_await pe.fetchAdd(queue.delPtr, 1);
    const Word cell = my % queue.size;
    const Word round = my / queue.size;
    // Wait turn at MyD: the round's insertion must have completed.
    while (true) {
        const Word filled = co_await pe.load(queue.insSeq + cell);
        if (filled >= round + 1)
            break;
        co_await pe.compute(kPollBackoffInstr);
    }
    *value_out = co_await pe.load(queue.data + cell);
    co_await pe.store(queue.delSeq + cell, round + 1);
    const Word was = co_await pe.fetchAdd(queue.upper, -1);
    (void)was;
    *underflow_out = false;
}

Barrier
Barrier::create(Machine &machine, Word parties)
{
    ULTRA_ASSERT(parties > 0);
    Barrier barrier;
    barrier.parties = parties;
    barrier.count = machine.allocShared(1, "barrier.count");
    barrier.sense = machine.allocShared(1, "barrier.sense");
    return barrier;
}

pe::Task
barrierWait(pe::Pe &pe, Barrier barrier, Word *local_sense)
{
    const Word my_sense = 1 - *local_sense;
    const Word arrived = co_await pe.fetchAdd(barrier.count, 1);
    if (arrived == barrier.parties - 1) {
        // Last arrival: reset and release the episode.
        co_await pe.store(barrier.count, 0);
        co_await pe.store(barrier.sense, my_sense);
    } else {
        while (true) {
            const Word sense = co_await pe.load(barrier.sense);
            if (sense == my_sense)
                break;
            co_await pe.compute(kPollBackoffInstr);
        }
    }
    *local_sense = my_sense;
}

RwLock
RwLock::create(Machine &machine)
{
    RwLock lock;
    lock.readers = machine.allocShared(1, "rw.readers");
    lock.writer = machine.allocShared(1, "rw.writer");
    lock.wticket = machine.allocShared(1, "rw.wticket");
    lock.wserving = machine.allocShared(1, "rw.wserving");
    return lock;
}

pe::Task
readerLock(pe::Pe &pe, RwLock lock)
{
    while (true) {
        const Word was = co_await pe.fetchAdd(lock.readers, 1);
        (void)was;
        const Word writer_active = co_await pe.load(lock.writer);
        if (writer_active == 0)
            co_return; // no writer: fully parallel entry
        const Word undo = co_await pe.fetchAdd(lock.readers, -1);
        (void)undo;
        while (true) {
            const Word writer_now = co_await pe.load(lock.writer);
            if (writer_now == 0)
                break;
            co_await pe.compute(kPollBackoffInstr);
        }
    }
}

pe::Task
readerUnlock(pe::Pe &pe, RwLock lock)
{
    const Word was = co_await pe.fetchAdd(lock.readers, -1);
    (void)was;
}

pe::Task
writerLock(pe::Pe &pe, RwLock lock)
{
    // Writers are inherently serial: FIFO tickets among themselves.
    const Word ticket = co_await pe.fetchAdd(lock.wticket, 1);
    while (true) {
        const Word serving = co_await pe.load(lock.wserving);
        if (serving == ticket)
            break;
        co_await pe.compute(kPollBackoffInstr);
    }
    co_await pe.store(lock.writer, 1);
    // Drain readers that entered before the flag went up.
    while (true) {
        const Word readers_now = co_await pe.load(lock.readers);
        if (readers_now == 0)
            break;
        co_await pe.compute(kPollBackoffInstr);
    }
}

pe::Task
writerUnlock(pe::Pe &pe, RwLock lock)
{
    co_await pe.store(lock.writer, 0);
    const Word was = co_await pe.fetchAdd(lock.wserving, 1);
    (void)was;
}

} // namespace ultra::core
