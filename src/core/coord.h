/**
 * @file
 * Critical-section-free coordination on the simulated machine
 * (section 2.3 and the appendix).
 *
 * All primitives are built solely from fetch-and-add (plus its load /
 * store / test-and-set special cases) and contain no code that could
 * create a serial bottleneck when the structures are neither empty nor
 * full -- "the concurrent execution of thousands of inserts and
 * thousands of deletes can all be accomplished in the time required for
 * just one such operation".
 *
 * ParallelQueue is the appendix algorithm: a circular array Q[0:Size-1]
 * with insert pointer I, delete pointer D, and lower/upper occupancy
 * bounds #Qi / #Qu guarded by the test-increment-retest (TIR) and
 * test-decrement-retest (TDR) sequences.  "Wait turn at MyI" is
 * realized with per-cell round counters so overlapping wrap-arounds
 * stay FIFO.
 */

#ifndef ULTRA_CORE_COORD_H
#define ULTRA_CORE_COORD_H

#include <cstdint>

#include "core/machine.h"
#include "pe/pe.h"
#include "pe/task.h"

namespace ultra::core
{

/** Shared-memory layout of one appendix-style parallel queue. */
struct ParallelQueue
{
    Word size = 0;   //!< capacity in items
    Addr data = 0;   //!< Q[0 : size-1]
    Addr insPtr = 0; //!< I: items ever inserted (mod size gives the cell)
    Addr delPtr = 0; //!< D: items ever deleted
    Addr lower = 0;  //!< #Qi: lower bound on occupancy
    Addr upper = 0;  //!< #Qu: upper bound on occupancy
    Addr insSeq = 0; //!< per-cell rounds completed by inserters
    Addr delSeq = 0; //!< per-cell rounds completed by deleters

    /** Allocate and zero-initialize a queue of @p size items. */
    static ParallelQueue create(Machine &machine, Word size);
};

/**
 * Test-increment-retest (appendix): atomically claim one unit of S
 * subject to S + delta <= bound; undoes the claim on overshoot.  The
 * initial test looks redundant but prevents unacceptable race
 * conditions (unbounded drift of S under contention).
 */
pe::Task tirTask(pe::Pe &pe, Addr s, Word delta, Word bound,
                 bool *ok_out);

/** Test-decrement-retest: claim subject to S - delta >= 0. */
pe::Task tdrTask(pe::Pe &pe, Addr s, Word delta, bool *ok_out);

/**
 * Appendix Insert: on success *overflow_out = false and @p value is
 * enqueued; a full queue sets *overflow_out = true.
 */
pe::Task queueInsert(pe::Pe &pe, ParallelQueue queue, Word value,
                     bool *overflow_out);

/**
 * Appendix Delete: on success *underflow_out = false and *value_out
 * receives the item; an empty queue sets *underflow_out = true.
 */
pe::Task queueDelete(pe::Pe &pe, ParallelQueue queue,
                     Word *value_out, bool *underflow_out);

/** Shared state of the fetch-and-add barrier. */
struct Barrier
{
    Word parties = 0; //!< PEs that must arrive
    Addr count = 0;   //!< arrivals this episode
    Addr sense = 0;   //!< episode parity

    static Barrier create(Machine &machine, Word parties);
};

/**
 * Sense-reversing barrier.  @p local_sense is the PE-private phase flag
 * (a coroutine-frame variable): initialize to 0 and reuse the same
 * variable for every episode on that PE.
 */
pe::Task barrierWait(pe::Pe &pe, Barrier barrier,
                     Word *local_sense);

/** Shared state of the completely-parallel readers-writers lock. */
struct RwLock
{
    Addr readers = 0; //!< active readers
    Addr writer = 0;  //!< a writer holds or awaits the lock
    Addr wticket = 0; //!< writers' ticket dispenser
    Addr wserving = 0; //!< writers' now-serving counter

    static RwLock create(Machine &machine);
};

/**
 * Reader entry: during periods with no writers active no serial code is
 * executed (readers only fetch-and-add shared counters).
 */
pe::Task readerLock(pe::Pe &pe, RwLock lock);
pe::Task readerUnlock(pe::Pe &pe, RwLock lock);

/**
 * Writer entry: writers are inherently serial (the problem demands it);
 * they take FIFO tickets among themselves and then drain the readers.
 */
pe::Task writerLock(pe::Pe &pe, RwLock lock);
pe::Task writerUnlock(pe::Pe &pe, RwLock lock);

} // namespace ultra::core

#endif // ULTRA_CORE_COORD_H
