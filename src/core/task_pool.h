/**
 * @file
 * A totally decentralized task scheduler for the simulated machine
 * (section 2.3): "a highly concurrent queue management technique that
 * can be used to implement a totally decentralized operating system
 * scheduler".
 *
 * Ready tasks are Word descriptors in an appendix-style ParallelQueue;
 * a fetch-and-add activity counter tracks tasks queued or executing.
 * There is no dispatcher and no scheduler lock: every PE runs the same
 * worker loop, deleting work, executing it (tasks may submit more
 * work), and exiting when the system is quiescent.
 *
 * Also here: the self-scheduling parallel loop of section 2.2 -- PEs
 * fetch-and-add a shared index to claim chunks of an iteration space,
 * giving automatic load balance with no pre-partitioning.
 */

#ifndef ULTRA_CORE_TASK_POOL_H
#define ULTRA_CORE_TASK_POOL_H

#include <functional>

#include "core/coord.h"
#include "core/machine.h"
#include "pe/pe.h"
#include "pe/task.h"

namespace ultra::core
{

/** Shared state of the decentralized scheduler. */
struct TaskPool
{
    ParallelQueue queue; //!< ready-task descriptors
    Addr pending = 0;    //!< tasks queued or currently executing
    Addr executed = 0;   //!< tasks completed (statistics)

    /** Allocate a pool whose ready queue holds @p capacity tasks. */
    static TaskPool create(Machine &machine, Word capacity);
};

/**
 * Submit a task descriptor to the pool.  Callable from worker tasks
 * (spawning) and from seed programs alike; spins while the ready queue
 * is full (other workers are draining it).
 */
pe::Task poolSubmit(pe::Pe &pe, TaskPool pool, Word descriptor);

/**
 * The per-PE executor body invoked for every claimed task.  It may
 * co_await poolSubmit() to spawn further tasks.
 */
using PoolHandler = std::function<pe::Task(pe::Pe &, Word descriptor)>;

/**
 * Run the worker loop: claim and execute tasks until the pool is
 * quiescent (no task queued or executing anywhere).  Launch this on
 * every participating PE.
 */
pe::Task poolWorker(pe::Pe &pe, TaskPool pool, PoolHandler handler);

/**
 * Self-scheduling loop body: invoked with a claimed index range
 * [begin, end).
 */
using RangeBody =
    std::function<pe::Task(pe::Pe &, Word begin, Word end)>;

/**
 * The section-2.2 idiom as a reusable helper: PEs cooperatively cover
 * [0, total) in chunks of @p chunk indices claimed by fetch-and-add on
 * the shared @p counter (allocate one word, initially 0, per loop).
 * Run the same call on every participating PE; each returns when the
 * iteration space is exhausted.  Dynamic chunk claiming balances
 * uneven iteration costs automatically.
 */
pe::Task parallelFor(pe::Pe &pe, Addr counter, Word total, Word chunk,
                     RangeBody body);

} // namespace ultra::core

#endif // ULTRA_CORE_TASK_POOL_H
