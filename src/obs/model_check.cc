#include "model_check.h"

#include <cmath>
#include <sstream>

#include "common/log.h"
#include "obs/json.h"
#include "obs/registry.h"

namespace ultra::obs
{

bool
ModelReport::withinTolerance() const
{
    if (!applicable)
        return true;
    return std::isfinite(drift) && std::fabs(drift) <= tolerance;
}

ModelCrossCheck::ModelCrossCheck(const analytic::NetworkConfig &cfg,
                                 double offered_load,
                                 double measured_transit,
                                 bool applicable, double tolerance)
{
    report_.config = cfg;
    report_.offeredLoad = offered_load;
    report_.predictedTransit =
        analytic::predictedSimTransit(cfg, offered_load);
    report_.measuredTransit = measured_transit;
    report_.drift =
        analytic::transitDrift(cfg, offered_load, measured_transit);
    report_.applicable = applicable;
    report_.tolerance = tolerance;
}

void
ModelCrossCheck::registerStats(Registry &registry,
                               const std::string &prefix) const
{
    const ModelReport r = report_; // value-captured: no lifetime tie
    registry.addScalar(prefix + ".predicted_transit",
                       [r] { return r.predictedTransit; },
                       "Kruskal-Snir T(p) + injection hop, cycles");
    registry.addScalar(prefix + ".measured_transit",
                       [r] { return r.measuredTransit; },
                       "simulated mean one-way transit, cycles");
    registry.addScalar(prefix + ".offered_load",
                       [r] { return r.offeredLoad; },
                       "measured offered load, msgs/PE/cycle");
    registry.addScalar(prefix + ".drift",
                       [r] { return r.drift; },
                       "(measured - predicted) / predicted");
    registry.addScalar(prefix + ".applicable",
                       [r] { return r.applicable ? 1.0 : 0.0; },
                       "1 when the config matches model assumptions");
}

bool
ModelCrossCheck::check() const
{
    const bool ok = report_.withinTolerance();
    if (!ok) {
        std::ostringstream os;
        os << "model drift out of tolerance: measured transit "
           << report_.measuredTransit << " vs predicted "
           << report_.predictedTransit << " at p = "
           << report_.offeredLoad << " (drift "
           << report_.drift * 100.0 << "%, tolerance "
           << report_.tolerance * 100.0 << "%)";
        warn(os.str());
    }
    return ok;
}

std::string
ModelCrossCheck::json() const
{
    std::ostringstream os;
    os << "{\"n\": " << report_.config.n << ", \"k\": "
       << report_.config.k << ", \"m\": " << report_.config.m
       << ", \"d\": " << report_.config.d << ", \"offered_load\": ";
    writeJsonNumber(os, report_.offeredLoad);
    os << ", \"predicted_transit\": ";
    writeJsonNumber(os, report_.predictedTransit);
    os << ", \"measured_transit\": ";
    writeJsonNumber(os, report_.measuredTransit);
    os << ", \"drift\": ";
    writeJsonNumber(os, report_.drift);
    os << ", \"tolerance\": ";
    writeJsonNumber(os, report_.tolerance);
    os << ", \"applicable\": "
       << (report_.applicable ? "true" : "false")
       << ", \"within_tolerance\": "
       << (report_.withinTolerance() ? "true" : "false") << "}";
    return os.str();
}

} // namespace ultra::obs
