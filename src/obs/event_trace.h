/**
 * @file
 * Chrome trace-event recording (loadable in Perfetto / chrome://tracing).
 *
 * An EventTrace collects timestamped events on named *tracks*: a track
 * corresponds to a trace-event "process" (one per network stage and
 * direction, one for the PEs, one for the memory modules) and the tid
 * within it to a lane (switch output port, PE id, MM id).  Components
 * hold a nullable EventTrace pointer and emit through it; with no trace
 * attached the hooks cost one branch.
 *
 * Three event shapes cover the simulator:
 *   - complete ("X"): an interval -- a message holding a link for its
 *     packet count, an MM servicing a request, a PE context waiting;
 *   - instant ("i"): a point -- inject, combine, decombine, reply;
 *   - counter ("C"): a numeric series -- queue occupancy over time.
 *
 * Timestamps are simulated cycles written into the "ts"/"dur" fields
 * (nominally microseconds; read them as cycles).  Event names must be
 * string literals or otherwise outlive the trace -- the recorder stores
 * the pointer, keeping the hot path allocation-free.
 *
 * The buffer is bounded: past maxEvents, further events are counted as
 * dropped rather than recorded, so a runaway run degrades instead of
 * exhausting memory.
 */

#ifndef ULTRA_OBS_EVENT_TRACE_H
#define ULTRA_OBS_EVENT_TRACE_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace ultra::obs
{

/** A bounded in-memory recorder of Chrome trace events. */
class EventTrace
{
  public:
    /** Identifies a track (a trace-event process). */
    using TrackId = std::uint32_t;

    explicit EventTrace(std::size_t max_events = 4'000'000);

    /** Intern @p name as a track; idempotent per name. */
    TrackId track(const std::string &name);

    /**
     * An interval [start, start + duration) on @p track / @p tid.
     * Nonzero @p id / @p link land in the event's args ("id"/"link"):
     * the network uses them to tie hop intervals to message ids so an
     * offline analyzer (tools/ultrascope) can reconstruct per-message
     * paths and combine trees.
     */
    void complete(TrackId track, std::uint32_t tid, const char *name,
                  Cycle start, Cycle duration, std::uint64_t id = 0,
                  std::uint64_t link = 0);

    /** A point event at @p at (see complete() for @p id / @p link). */
    void instant(TrackId track, std::uint32_t tid, const char *name,
                 Cycle at, std::uint64_t id = 0, std::uint64_t link = 0);

    /** One point of the numeric series @p name. */
    void counter(TrackId track, const char *name, Cycle at,
                 double value);

    std::size_t size() const { return events_.size(); }
    std::uint64_t dropped() const { return dropped_; }
    std::size_t numTracks() const { return tracks_.size(); }

    /** The whole trace as Chrome JSON: {"traceEvents": [...]}. */
    std::string json() const;
    void writeJson(std::ostream &os) const;

    /** Write json() to @p path; false (with a warning) on failure. */
    bool save(const std::string &path) const;

  private:
    struct Event
    {
        const char *name;
        TrackId track;
        std::uint32_t tid;
        Cycle ts;
        Cycle dur;   //!< complete events only
        double value; //!< counter events only
        std::uint64_t id;   //!< args.id when nonzero ('X'/'i')
        std::uint64_t link; //!< args.link when nonzero ('X'/'i')
        char ph;     //!< 'X', 'i' or 'C'
    };

    bool admit();

    std::vector<std::string> tracks_;
    std::unordered_map<std::string, TrackId> trackIndex_;
    std::vector<Event> events_;
    std::size_t maxEvents_;
    std::uint64_t dropped_ = 0;
};

} // namespace ultra::obs

#endif // ULTRA_OBS_EVENT_TRACE_H
