/**
 * @file
 * Unified statistics registry (gem5-style), the heart of ultra::obs.
 *
 * Components register named statistics under a hierarchical dotted path
 * ("net.stage2.combines", "pni.retries", "mem.module12.fa_ops") during
 * construction; the registry then renders all of them uniformly -- as
 * the human-readable run report and as a machine-readable JSON dump --
 * without the components knowing about either format.
 *
 * Three kinds of statistic are supported:
 *   - scalars: a getter returning the current value.  Works equally for
 *     monotone counters ("net.injected") and live gauges sampled at
 *     read time ("net.stage0.tomm_pkts", current queue occupancy);
 *   - Accumulators (count / mean / stddev / min / max);
 *   - Histograms (binned distributions with percentiles).
 *
 * Registration is getter-based, so the registry holds no data of its
 * own and reads are always current: resetting a component's stats is
 * immediately visible through the registry.  Paths must be unique;
 * registering a duplicate is a simulator bug (panic).
 */

#ifndef ULTRA_OBS_REGISTRY_H
#define ULTRA_OBS_REGISTRY_H

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace ultra::obs
{

/** Rendering options for Registry::jsonDump. */
struct DumpOptions
{
    /** Emit entries sorted by path instead of registration order.
     *  Registration order depends on construction details; sorted
     *  output is stable across code motion and repeated runs. */
    bool sortKeys = false;
    /** One entry per line (the historical format) vs. one line. */
    bool pretty = true;
};

/** The hierarchical name -> statistic table. */
class Registry
{
  public:
    /** Getter for a scalar statistic (counter or gauge). */
    using ValueFn = std::function<double()>;

    /** Register a scalar under @p path (panics on duplicates). */
    void addScalar(const std::string &path, ValueFn fn,
                   std::string desc = "");

    /** Register an Accumulator; @p acc must outlive the registry. */
    void addAccumulator(const std::string &path, const Accumulator *acc,
                        std::string desc = "");

    /** Register a Histogram; @p hist must outlive the registry. */
    void addHistogram(const std::string &path, const Histogram *hist,
                      std::string desc = "");

    bool has(const std::string &path) const;
    std::size_t size() const { return entries_.size(); }

    /** All registered paths, in registration order. */
    std::vector<std::string> paths() const;

    /**
     * Current numeric value of @p path: the scalar itself, or an
     * Accumulator's mean, or a Histogram's mean.  Panics when the path
     * is unknown.
     */
    double value(const std::string &path) const;

    /** The registered Accumulator (panics unless @p path names one). */
    const Accumulator &accumulator(const std::string &path) const;

    /** The registered Histogram (panics unless @p path names one). */
    const Histogram &histogram(const std::string &path) const;

    /**
     * Machine-readable dump: one JSON object keyed by full path, with
     * scalars as numbers and accumulators / histograms as objects.
     *
     * {"cycle": 123, "stats": {"net.injected": 42,
     *   "net.round_trip": {"count":..,"mean":..,...}, ...}}
     *
     * The default rendering (registration order, one entry per line)
     * is pinned byte-for-byte by the golden regression suite; pass
     * DumpOptions for sorted keys or compact output.
     */
    std::string jsonDump(Cycle now) const { return jsonDump(now, {}); }
    std::string jsonDump(Cycle now, const DumpOptions &opts) const;

    /** Plain "path = value" listing for debug output. */
    std::string render() const;

  private:
    enum class Kind : std::uint8_t { Scalar, Accumulator, Histogram };

    struct Entry
    {
        std::string path;
        std::string desc;
        Kind kind;
        ValueFn fn;
        const Accumulator *acc = nullptr;
        const Histogram *hist = nullptr;
    };

    const Entry &find(const std::string &path) const;
    void insert(Entry entry);

    std::vector<Entry> entries_;
    std::unordered_map<std::string, std::size_t> index_;
};

} // namespace ultra::obs

#endif // ULTRA_OBS_REGISTRY_H
