/**
 * @file
 * Minimal JSON emission helpers shared by the observability sinks
 * (registry dumps, trace-event files).  Writing only -- the simulator
 * never parses JSON.
 */

#ifndef ULTRA_OBS_JSON_H
#define ULTRA_OBS_JSON_H

#include <ostream>
#include <string_view>

namespace ultra::obs
{

/** Write @p s as a JSON string literal, with escaping. */
void writeJsonString(std::ostream &os, std::string_view s);

/**
 * Write @p x as a JSON number.  Integral values print without a
 * fraction; non-finite values (which JSON cannot represent) print as
 * null.
 */
void writeJsonNumber(std::ostream &os, double x);

} // namespace ultra::obs

#endif // ULTRA_OBS_JSON_H
