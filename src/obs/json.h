/**
 * @file
 * Minimal JSON emission helpers shared by the observability sinks
 * (registry dumps, trace-event files).  Writing only -- the simulator
 * never parses JSON.
 */

#ifndef ULTRA_OBS_JSON_H
#define ULTRA_OBS_JSON_H

#include <ostream>
#include <string_view>

namespace ultra
{
class Accumulator;
class Histogram;
} // namespace ultra

namespace ultra::obs
{

/** Write @p s as a JSON string literal, with escaping. */
void writeJsonString(std::ostream &os, std::string_view s);

/**
 * Write @p x as a JSON number.  Integral values print without a
 * fraction; non-finite values (which JSON cannot represent) print as
 * null.
 */
void writeJsonNumber(std::ostream &os, double x);

/** {"count": .., "mean": .., "stddev": .., "min": .., "max": ..} --
 *  the registry-dump shape, shared by every sink. */
void writeJsonAccumulator(std::ostream &os, const Accumulator &acc);

/** {"count": .., "mean": .., "bin_width": .., "p50": .., "p95": ..,
 *  "p99": .., "bins": [..]} with trailing empty bins trimmed. */
void writeJsonHistogram(std::ostream &os, const Histogram &hist);

} // namespace ultra::obs

#endif // ULTRA_OBS_JSON_H
