/**
 * @file
 * Per-cycle time-series probes (the section-4 saturation analysis,
 * time-resolved).
 *
 * A Sampler holds a set of named columns, each a getter; sample(now)
 * evaluates every column and appends one row.  The driving loop
 * (Machine::run, or a bench's own loop) calls sample() every S cycles,
 * turning end-of-run means into curves: queue occupancy ramping as a
 * hot spot saturates, combine rate per stage settling, PE idle
 * fraction over a barrier.  Rows dump as CSV with a leading "cycle"
 * column.
 */

#ifndef ULTRA_OBS_SAMPLER_H
#define ULTRA_OBS_SAMPLER_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"

namespace ultra::obs
{

class Registry;

/** A growing table of (cycle, column values) snapshots. */
class Sampler
{
  public:
    using ValueFn = std::function<double()>;

    /** Add a column; must happen before the first sample(). */
    void addColumn(std::string name, ValueFn fn);

    /** Add a column reading @p path from @p registry (named after it). */
    void addRegistryColumn(const Registry &registry,
                           const std::string &path);

    /** Snapshot every column at time @p now (appends one row). */
    void sample(Cycle now);

    std::size_t numColumns() const { return columns_.size(); }
    std::size_t numRows() const { return cycles_.size(); }
    const std::vector<std::string> &columnNames() const { return names_; }

    Cycle cycleAt(std::size_t row) const { return cycles_.at(row); }
    double at(std::size_t row, std::size_t col) const;

    /** Drop all rows (columns stay). */
    void clear();

    /** Render all rows as CSV ("cycle,<col>,<col>,...\n..."). */
    std::string csv() const;

    /** Write csv() to @p path; false (with a warning) on I/O failure. */
    bool save(const std::string &path) const;

  private:
    struct Column
    {
        ValueFn fn;
    };

    std::vector<Column> columns_;
    std::vector<std::string> names_;
    std::vector<Cycle> cycles_;
    std::vector<double> data_; //!< row-major, numColumns() per row
};

} // namespace ultra::obs

#endif // ULTRA_OBS_SAMPLER_H
