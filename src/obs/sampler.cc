#include "sampler.h"

#include <fstream>
#include <sstream>

#include "common/log.h"
#include "obs/json.h"
#include "obs/registry.h"

namespace ultra::obs
{

void
Sampler::addColumn(std::string name, ValueFn fn)
{
    ULTRA_ASSERT(cycles_.empty(),
                 "cannot add sampler column '", name,
                 "' after sampling started");
    ULTRA_ASSERT(fn != nullptr);
    names_.push_back(std::move(name));
    columns_.push_back({std::move(fn)});
}

void
Sampler::addRegistryColumn(const Registry &registry,
                           const std::string &path)
{
    ULTRA_ASSERT(registry.has(path),
                 "sampler column for unknown statistic '", path, "'");
    addColumn(path, [&registry, path] { return registry.value(path); });
}

void
Sampler::sample(Cycle now)
{
    cycles_.push_back(now);
    for (const Column &col : columns_)
        data_.push_back(col.fn());
}

double
Sampler::at(std::size_t row, std::size_t col) const
{
    ULTRA_ASSERT(row < numRows() && col < numColumns());
    return data_[row * numColumns() + col];
}

void
Sampler::clear()
{
    cycles_.clear();
    data_.clear();
}

std::string
Sampler::csv() const
{
    std::ostringstream os;
    os << "cycle";
    for (const std::string &name : names_)
        os << ',' << name;
    os << '\n';
    for (std::size_t row = 0; row < numRows(); ++row) {
        os << cycles_[row];
        for (std::size_t col = 0; col < numColumns(); ++col) {
            os << ',';
            writeJsonNumber(os, at(row, col)); // compact numerals
        }
        os << '\n';
    }
    return os.str();
}

bool
Sampler::save(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot write samples to '", path, "'");
        return false;
    }
    out << csv();
    return static_cast<bool>(out);
}

} // namespace ultra::obs
