#include "json.h"

#include <cmath>
#include <cstdint>
#include <cstdio>

#include "common/stats.h"

namespace ultra::obs
{

void
writeJsonString(std::ostream &os, std::string_view s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
writeJsonNumber(std::ostream &os, double x)
{
    if (!std::isfinite(x)) {
        os << "null";
        return;
    }
    // Counters are the common case; print them exactly and compactly.
    constexpr double kExactInt = 9007199254740992.0; // 2^53
    if (x == std::floor(x) && std::fabs(x) < kExactInt) {
        os << static_cast<std::int64_t>(x);
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", x);
    os << buf;
}

void
writeJsonAccumulator(std::ostream &os, const Accumulator &acc)
{
    os << "{\"count\": " << acc.count() << ", \"mean\": ";
    writeJsonNumber(os, acc.mean());
    os << ", \"stddev\": ";
    writeJsonNumber(os, acc.stddev());
    os << ", \"min\": ";
    writeJsonNumber(os, acc.min());
    os << ", \"max\": ";
    writeJsonNumber(os, acc.max());
    os << "}";
}

void
writeJsonHistogram(std::ostream &os, const Histogram &hist)
{
    os << "{\"count\": " << hist.count() << ", \"mean\": ";
    writeJsonNumber(os, hist.mean());
    os << ", \"bin_width\": " << hist.binWidth()
       << ", \"p50\": " << hist.percentile(0.5)
       << ", \"p95\": " << hist.percentile(0.95)
       << ", \"p99\": " << hist.percentile(0.99)
       << ", \"bins\": [";
    // Trailing empty bins carry no information; trim them.
    std::size_t last = hist.numBins();
    while (last > 0 && hist.binCount(last - 1) == 0)
        --last;
    for (std::size_t i = 0; i < last; ++i) {
        if (i)
            os << ",";
        os << hist.binCount(i);
    }
    os << "]}";
}

} // namespace ultra::obs
