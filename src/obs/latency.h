/**
 * @file
 * Packet-lifecycle latency observatory (ultra::obs v2).
 *
 * Every request injected into the network (and every combined-away
 * sub-request) carries a LatencyRecord stamped at each lifecycle event:
 * PNI issue, injection, per-stage queue entry/exit in both directions,
 * combine/decombine, full receipt at the MNI, memory service start and
 * final delivery.  The observatory folds closed records into
 *
 *   - per-stage wait histograms and a stage x switch congestion heatmap
 *     (forward and reverse directions separately),
 *   - a combining-effectiveness report: combine rate, fan-in
 *     distribution, wait-buffer residence, and the MM service cycles
 *     combining saved versus replaying every request uncombined,
 *   - a check-style decomposition invariant: for every delivered
 *     request the per-stage waits + wire hops + pipe fill + memory
 *     service must sum exactly to the observed end-to-end round trip.
 *     Violations are counted (lat.violations) and the first few are
 *     reported with full stamp detail.
 *
 * Threading contract (see DESIGN.md "The compute/commit phase
 * contract" and "Sharding the network tick"): the arrival-phase hooks
 * noteFwdArrive, noteRevArrive, noteCombined and noteDecombine may be
 * called from the network shard that owns the record's message during
 * the parallel arrival phase; they touch only the record itself and
 * (for noteCombined) heat cells of switches that shard owns.  Every
 * other hook — open, departures, MNI/service stamps, both closes — runs
 * in the sequential phase and owns the shared aggregates, so output is
 * bit-identical for any --threads N.  Hooks are free of allocation in
 * steady state: records are pooled and recycled on close.
 *
 * The observatory is opt-in.  With no observatory attached each network
 * hook is a single null-pointer test, and no lat.* statistics are
 * registered, so default stat/golden output is byte-identical.
 */

#ifndef ULTRA_OBS_LATENCY_H
#define ULTRA_OBS_LATENCY_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace ultra::obs
{

class Registry;

/** "This event never happened" stamp value. */
inline constexpr Cycle kNoStamp = kNeverCycle;

/** The lifecycle stamps of one request (or combined sub-request). */
struct LatencyRecord
{
    std::uint64_t msgId = 0;
    Cycle requestAt = kNoStamp; //!< queued at the PNI (may be unknown)
    Cycle injectAt = kNoStamp;  //!< accepted by the network
    Cycle combineAt = kNoStamp; //!< absorbed into a matching request
    Cycle decombineAt = kNoStamp; //!< reply fissioned back out
    Cycle mniArriveAt = kNoStamp; //!< full receipt at the MNI
    Cycle serviceStartAt = kNoStamp; //!< MM access began
    Cycle deliverAt = kNoStamp; //!< reply receipt at the PE
    int combineStage = -1;      //!< stage absorbed at, -1 = direct
    std::uint32_t reqPackets = 0;   //!< length on arrival at the MNI
    std::uint32_t replyPackets = 0; //!< length on delivery to the PE
    std::uint32_t fanIn = 1;    //!< requests served by this MM access

    /** Per-stage queue entry/exit times; kNoStamp = never visited. */
    std::vector<Cycle> fwdArrive;
    std::vector<Cycle> fwdDepart;
    std::vector<Cycle> revArrive;
    std::vector<Cycle> revDepart;
};

/** Topology facts the decomposition check needs (keeps ultra::obs free
 *  of any dependency on ultra::net). */
struct LatencyShape
{
    unsigned stages = 1;
    std::uint32_t switchesPerStage = 1;
    Cycle mmAccessTime = 2;
};

/** Pools records, receives lifecycle stamps, folds closed records into
 *  aggregate statistics.  One instance per network. */
class LatencyObservatory
{
  public:
    explicit LatencyObservatory(const LatencyShape &shape);

    const LatencyShape &shape() const { return shape_; }

    // --- lifecycle hooks (sequential phase; the four arrival-side
    // hooks are additionally shard-safe, see the threading contract) --

    /** A request entered the network; returns its (pooled) record. */
    LatencyRecord *open(std::uint64_t msg_id, Cycle request_at,
                        Cycle inject_at);

    void
    noteFwdArrive(LatencyRecord *rec, unsigned s, Cycle now)
    {
        rec->fwdArrive[s] = now;
    }

    /** Absorbed by combining at stage @p s, switch @p sw. */
    void noteCombined(LatencyRecord *rec, unsigned s, std::uint32_t sw,
                      Cycle now);

    /** Left a ToMM queue; @p final_stage means toward the MNI. */
    void noteFwdDepart(LatencyRecord *rec, unsigned s, std::uint32_t sw,
                       Cycle now, std::uint32_t packets,
                       bool final_stage);

    /**
     * Record-only half of noteFwdDepart, safe from the network shard
     * that owns the departing message during the parallel departure
     * window.  Returns the queue wait; the caller stages it and folds
     * it later (sequentially) via foldDepartWait.
     */
    Cycle
    stampFwdDepart(LatencyRecord *rec, unsigned s, Cycle now,
                   std::uint32_t packets, bool final_stage)
    {
        const Cycle wait = now - rec->fwdArrive[s];
        rec->fwdDepart[s] = now;
        if (final_stage)
            rec->reqPackets = packets;
        return wait;
    }

    /** Record-only half of noteRevDepart (see stampFwdDepart). */
    Cycle
    stampRevDepart(LatencyRecord *rec, unsigned s, Cycle now,
                   std::uint32_t packets, bool last_stage)
    {
        const Cycle wait = now - rec->revArrive[s];
        rec->revDepart[s] = now;
        if (last_stage)
            rec->replyPackets = packets;
        return wait;
    }

    /**
     * Aggregate half of a departure stamp: fold one staged queue wait
     * into the stage histogram and heatmap cell.  Pure integer adds,
     * so any fold order yields identical aggregates.  Sequential phase
     * only.
     */
    void
    foldDepartWait(bool forward, unsigned s, std::uint32_t sw,
                   Cycle wait)
    {
        (forward ? fwdWaitHist_ : revWaitHist_)[s].add(wait);
        HeatCell &c = cell(forward, s, sw);
        ++c.visits;
        c.waitCycles += wait;
    }

    void
    noteMniArrive(LatencyRecord *rec, Cycle at)
    {
        rec->mniArriveAt = at;
    }

    /** MM access began; @p fan_in requests are answered by it and each
     *  absorbed one saved a @p service_slot-cycle MM serialization. */
    void noteServiceStart(LatencyRecord *rec, Cycle now,
                          std::uint32_t fan_in, Cycle service_slot);

    /** A reply was fissioned for this combined-away record at stage
     *  @p s; the spawned reply enters that stage's ToPE queue now. */
    void noteDecombine(LatencyRecord *rec, unsigned s, Cycle now);

    void
    noteRevArrive(LatencyRecord *rec, unsigned s, Cycle now)
    {
        rec->revArrive[s] = now;
    }

    /** Left a ToPE queue; @p last_stage means toward the PE. */
    void noteRevDepart(LatencyRecord *rec, unsigned s, std::uint32_t sw,
                       Cycle now, std::uint32_t packets, bool last_stage);

    /** Reply delivered: run the decomposition check, fold aggregates,
     *  recycle the record. */
    void closeDelivered(LatencyRecord *rec, Cycle deliver_at);

    /** Burroughs-mode kill: recycle the record without aggregating. */
    void closeKilled(LatencyRecord *rec);

    // --- results ------------------------------------------------------

    std::uint64_t opened() const { return opened_; }
    std::uint64_t delivered() const { return delivered_; }
    std::uint64_t killed() const { return killed_; }
    /** Delivered records that had been combined away. */
    std::uint64_t combinedDelivered() const { return combinedDelivered_; }
    std::uint64_t decombines() const { return decombines_; }
    /** MM service cycles combining eliminated. */
    std::uint64_t mmCyclesSaved() const { return mmCyclesSaved_; }
    /** Decomposition-invariant failures among delivered records. */
    std::uint64_t violations() const { return violations_; }
    /** Records still in flight. */
    std::uint64_t liveRecords() const
    {
        return opened_ - delivered_ - killed_;
    }

    const Accumulator &pniWait() const { return pniWait_; }
    const Accumulator &endToEnd() const { return endToEnd_; }
    const Histogram &endToEndHist() const { return endToEndHist_; }
    const Accumulator &mmWait() const { return mmWait_; }
    const Accumulator &wbWait() const { return wbWait_; }
    const Histogram &fanInHist() const { return fanInHist_; }
    const Histogram &fwdWaitHist(unsigned s) const
    {
        return fwdWaitHist_[s];
    }
    const Histogram &revWaitHist(unsigned s) const
    {
        return revWaitHist_[s];
    }

    /** One stage x switch congestion-heatmap cell. */
    struct HeatCell
    {
        std::uint64_t visits = 0;
        std::uint64_t waitCycles = 0;
        std::uint64_t combines = 0;
    };
    const HeatCell &heatCell(bool forward, unsigned s,
                             std::uint32_t sw) const;

    /**
     * Register everything under "<prefix>." (lat.opened,
     * lat.end_to_end, lat.stage2.fwd_wait_hist, ...).  Call only when
     * the observatory is enabled: registering adds lines to every
     * subsequent registry dump.
     */
    void registerStats(Registry &registry,
                       const std::string &prefix) const;

    /** The latency report as a JSON object (see --latency-json). */
    std::string summaryJson() const;

    /** The congestion heatmap as CSV:
     *  direction,stage,switch,visits,wait_cycles,mean_wait,combines. */
    std::string heatmapCsv() const;

  private:
    HeatCell &cell(bool forward, unsigned s, std::uint32_t sw);
    void resetRecord(LatencyRecord &rec);
    /** The component sum of the decomposition invariant, or kNoStamp
     *  when a required stamp is missing. */
    Cycle componentSum(const LatencyRecord &rec) const;
    void reportViolation(const LatencyRecord &rec, Cycle expected,
                         Cycle observed);

    LatencyShape shape_;

    std::vector<std::unique_ptr<LatencyRecord>> slab_;
    std::vector<LatencyRecord *> freeList_;

    std::uint64_t opened_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t killed_ = 0;
    std::uint64_t combinedDelivered_ = 0;
    std::uint64_t decombines_ = 0;
    std::uint64_t mmCyclesSaved_ = 0;
    std::uint64_t violations_ = 0;

    Accumulator pniWait_;   //!< PNI queue -> network acceptance
    Accumulator endToEnd_;  //!< inject -> reply receipt
    Histogram endToEndHist_{2, 256};
    Accumulator mmWait_;    //!< MNI receipt -> service start
    Accumulator wbWait_;    //!< combine -> decombine residence
    Histogram fanInHist_{1, 16};
    std::vector<Histogram> fwdWaitHist_; //!< [stage], ToMM queue waits
    std::vector<Histogram> revWaitHist_; //!< [stage], ToPE queue waits
    std::vector<HeatCell> heat_; //!< [direction][stage][switch]
};

} // namespace ultra::obs

#endif // ULTRA_OBS_LATENCY_H
