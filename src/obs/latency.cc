#include "latency.h"

#include <algorithm>
#include <sstream>

#include "common/log.h"
#include "obs/json.h"
#include "obs/registry.h"

namespace ultra::obs
{

LatencyObservatory::LatencyObservatory(const LatencyShape &shape)
    : shape_(shape)
{
    ULTRA_ASSERT(shape.stages > 0 && shape.switchesPerStage > 0,
                 "degenerate latency shape");
    fwdWaitHist_.assign(shape_.stages, Histogram{1, 64});
    revWaitHist_.assign(shape_.stages, Histogram{1, 64});
    heat_.assign(std::size_t{2} * shape_.stages * shape_.switchesPerStage,
                 HeatCell{});
}

LatencyObservatory::HeatCell &
LatencyObservatory::cell(bool forward, unsigned s, std::uint32_t sw)
{
    const std::size_t dir = forward ? 0 : 1;
    return heat_[(dir * shape_.stages + s) * shape_.switchesPerStage +
                 sw];
}

const LatencyObservatory::HeatCell &
LatencyObservatory::heatCell(bool forward, unsigned s,
                             std::uint32_t sw) const
{
    const std::size_t dir = forward ? 0 : 1;
    return heat_[(dir * shape_.stages + s) * shape_.switchesPerStage +
                 sw];
}

void
LatencyObservatory::resetRecord(LatencyRecord &rec)
{
    rec.requestAt = kNoStamp;
    rec.injectAt = kNoStamp;
    rec.combineAt = kNoStamp;
    rec.decombineAt = kNoStamp;
    rec.mniArriveAt = kNoStamp;
    rec.serviceStartAt = kNoStamp;
    rec.deliverAt = kNoStamp;
    rec.combineStage = -1;
    rec.reqPackets = 0;
    rec.replyPackets = 0;
    rec.fanIn = 1;
    rec.fwdArrive.assign(shape_.stages, kNoStamp);
    rec.fwdDepart.assign(shape_.stages, kNoStamp);
    rec.revArrive.assign(shape_.stages, kNoStamp);
    rec.revDepart.assign(shape_.stages, kNoStamp);
}

LatencyRecord *
LatencyObservatory::open(std::uint64_t msg_id, Cycle request_at,
                         Cycle inject_at)
{
    LatencyRecord *rec;
    if (freeList_.empty()) {
        slab_.push_back(std::make_unique<LatencyRecord>());
        rec = slab_.back().get();
    } else {
        rec = freeList_.back();
        freeList_.pop_back();
    }
    resetRecord(*rec);
    rec->msgId = msg_id;
    rec->requestAt = request_at;
    rec->injectAt = inject_at;
    ++opened_;
    if (request_at != kNoStamp) {
        pniWait_.add(static_cast<double>(inject_at - request_at));
    }
    return rec;
}

void
LatencyObservatory::noteCombined(LatencyRecord *rec, unsigned s,
                                 std::uint32_t sw, Cycle now)
{
    rec->combineAt = now;
    rec->combineStage = static_cast<int>(s);
    ++cell(true, s, sw).combines;
}

void
LatencyObservatory::noteFwdDepart(LatencyRecord *rec, unsigned s,
                                  std::uint32_t sw, Cycle now,
                                  std::uint32_t packets, bool final_stage)
{
    foldDepartWait(true, s, sw,
                   stampFwdDepart(rec, s, now, packets, final_stage));
}

void
LatencyObservatory::noteServiceStart(LatencyRecord *rec, Cycle now,
                                     std::uint32_t fan_in,
                                     Cycle service_slot)
{
    rec->serviceStartAt = now;
    rec->fanIn = fan_in;
    fanInHist_.add(fan_in);
    mmWait_.add(static_cast<double>(now - rec->mniArriveAt));
    if (fan_in > 1)
        mmCyclesSaved_ += (fan_in - 1) * service_slot;
}

void
LatencyObservatory::noteDecombine(LatencyRecord *rec, unsigned s,
                                  Cycle now)
{
    // Record-only: this hook fires from the owning network shard during
    // the parallel arrival phase, so the shared decombine counter and
    // wait-buffer accumulator are deferred to closeDelivered (which
    // always runs in the sequential commit phase).
    rec->decombineAt = now;
    // The spawned reply enters this stage's ToPE queue immediately.
    rec->revArrive[s] = now;
}

void
LatencyObservatory::noteRevDepart(LatencyRecord *rec, unsigned s,
                                  std::uint32_t sw, Cycle now,
                                  std::uint32_t packets, bool last_stage)
{
    foldDepartWait(false, s, sw,
                   stampRevDepart(rec, s, now, packets, last_stage));
}

Cycle
LatencyObservatory::componentSum(const LatencyRecord &rec) const
{
    // The decomposition invariant (see DESIGN.md "Packet-lifecycle
    // stamps"): injection hop + per-stage forward waits + forward wire
    // hops + [pipe fill + MM queue wait + MM access + return hop |
    // wait-buffer residence] + per-stage reverse waits + reverse wire
    // hops + delivery pipe fill == end-to-end round trip.
    auto have = [](Cycle c) { return c != kNoStamp; };
    Cycle sum = 1; // inject -> stage-0 arrival
    if (rec.combineStage >= 0) {
        const auto cs = static_cast<unsigned>(rec.combineStage);
        for (unsigned s = 0; s < cs; ++s) {
            if (!have(rec.fwdArrive[s]) || !have(rec.fwdDepart[s]))
                return kNoStamp;
            sum += rec.fwdDepart[s] - rec.fwdArrive[s];
        }
        if (!have(rec.combineAt) || !have(rec.decombineAt))
            return kNoStamp;
        sum += cs;                               // forward wire hops
        sum += rec.decombineAt - rec.combineAt;  // wait-buffer residence
        for (unsigned s = 0; s <= cs; ++s) {
            if (!have(rec.revArrive[s]) || !have(rec.revDepart[s]))
                return kNoStamp;
            sum += rec.revDepart[s] - rec.revArrive[s];
        }
        sum += cs;                               // reverse wire hops
        sum += rec.replyPackets;                 // delivery pipe fill
        return sum;
    }
    const unsigned stages = shape_.stages;
    for (unsigned s = 0; s < stages; ++s) {
        if (!have(rec.fwdArrive[s]) || !have(rec.fwdDepart[s]))
            return kNoStamp;
        sum += rec.fwdDepart[s] - rec.fwdArrive[s];
    }
    if (!have(rec.mniArriveAt) || !have(rec.serviceStartAt))
        return kNoStamp;
    sum += stages - 1;                             // forward wire hops
    sum += rec.reqPackets;                         // MNI pipe fill
    sum += rec.serviceStartAt - rec.mniArriveAt;   // MM queue wait
    sum += shape_.mmAccessTime + 1;                // access + return hop
    for (unsigned s = 0; s < stages; ++s) {
        if (!have(rec.revArrive[s]) || !have(rec.revDepart[s]))
            return kNoStamp;
        sum += rec.revDepart[s] - rec.revArrive[s];
    }
    sum += stages - 1;                             // reverse wire hops
    sum += rec.replyPackets;                       // delivery pipe fill
    return sum;
}

void
LatencyObservatory::reportViolation(const LatencyRecord &rec,
                                    Cycle expected, Cycle observed)
{
    if (violations_ > 5)
        return; // first few carry all the signal
    std::ostringstream os;
    os << "latency decomposition violation for msg " << rec.msgId
       << ": components sum to "
       << (expected == kNoStamp ? std::string("<missing stamps>")
                                : std::to_string(expected))
       << " but end-to-end is " << observed << " (inject "
       << rec.injectAt << ", deliver " << rec.deliverAt
       << ", combine stage " << rec.combineStage << ")";
    warn(os.str());
}

void
LatencyObservatory::closeDelivered(LatencyRecord *rec, Cycle deliver_at)
{
    rec->deliverAt = deliver_at;
    const Cycle observed = deliver_at - rec->injectAt;
    endToEnd_.add(static_cast<double>(observed));
    endToEndHist_.add(observed);
    ++delivered_;
    if (rec->combineStage >= 0)
        ++combinedDelivered_;
    if (rec->decombineAt != kNoStamp) {
        ++decombines_;
        if (rec->combineAt != kNoStamp) {
            wbWait_.add(static_cast<double>(rec->decombineAt -
                                            rec->combineAt));
        }
    }

    const Cycle expected = componentSum(*rec);
    if (expected != observed) {
        ++violations_;
        reportViolation(*rec, expected, observed);
    }
    freeList_.push_back(rec);
}

void
LatencyObservatory::closeKilled(LatencyRecord *rec)
{
    ++killed_;
    freeList_.push_back(rec);
}

void
LatencyObservatory::registerStats(Registry &registry,
                                  const std::string &prefix) const
{
    auto count = [&](const char *leaf,
                     const std::uint64_t LatencyObservatory::*f,
                     const char *desc) {
        registry.addScalar(prefix + "." + leaf,
                           [this, f] {
                               return static_cast<double>(this->*f);
                           },
                           desc);
    };
    count("opened", &LatencyObservatory::opened_,
          "lifecycle records opened");
    count("delivered", &LatencyObservatory::delivered_,
          "records closed by delivery");
    count("killed", &LatencyObservatory::killed_,
          "records closed by Burroughs kill");
    count("combined_delivered", &LatencyObservatory::combinedDelivered_,
          "delivered records that were combined away");
    count("decombines", &LatencyObservatory::decombines_,
          "replies fissioned from wait buffers");
    count("mm_cycles_saved", &LatencyObservatory::mmCyclesSaved_,
          "MM service cycles eliminated by combining");
    count("violations", &LatencyObservatory::violations_,
          "latency decomposition invariant failures");

    registry.addAccumulator(prefix + ".pni_wait", &pniWait_,
                            "PNI queue -> network acceptance, cycles");
    registry.addAccumulator(prefix + ".end_to_end", &endToEnd_,
                            "inject -> reply receipt, cycles");
    registry.addHistogram(prefix + ".end_to_end_hist", &endToEndHist_,
                          "end-to-end latency distribution");
    registry.addAccumulator(prefix + ".mm_wait", &mmWait_,
                            "MNI receipt -> service start, cycles");
    registry.addAccumulator(prefix + ".wb_wait", &wbWait_,
                            "combine -> decombine residence, cycles");
    registry.addHistogram(prefix + ".fanin_hist", &fanInHist_,
                          "requests answered per MM access");
    for (unsigned s = 0; s < shape_.stages; ++s) {
        const std::string stage =
            prefix + ".stage" + std::to_string(s) + ".";
        registry.addHistogram(stage + "fwd_wait_hist", &fwdWaitHist_[s],
                              "ToMM queue wait at this stage, cycles");
        registry.addHistogram(stage + "rev_wait_hist", &revWaitHist_[s],
                              "ToPE queue wait at this stage, cycles");
    }
}

std::string
LatencyObservatory::summaryJson() const
{
    std::ostringstream os;
    os << "{\"shape\": {\"stages\": " << shape_.stages
       << ", \"switches_per_stage\": " << shape_.switchesPerStage
       << ", \"mm_access_time\": " << shape_.mmAccessTime << "},\n";
    os << " \"requests\": {\"opened\": " << opened_
       << ", \"delivered\": " << delivered_ << ", \"killed\": " << killed_
       << ", \"in_flight\": " << liveRecords()
       << ", \"violations\": " << violations_ << "},\n";
    os << " \"waits\": {\"pni_wait\": ";
    writeJsonAccumulator(os, pniWait_);
    os << ", \"end_to_end\": ";
    writeJsonAccumulator(os, endToEnd_);
    os << ", \"end_to_end_hist\": ";
    writeJsonHistogram(os, endToEndHist_);
    os << ", \"mm_wait\": ";
    writeJsonAccumulator(os, mmWait_);
    os << ",\n  \"stages\": [";
    for (unsigned s = 0; s < shape_.stages; ++s) {
        if (s)
            os << ",";
        os << "\n   {\"fwd_wait\": ";
        writeJsonHistogram(os, fwdWaitHist_[s]);
        os << ", \"rev_wait\": ";
        writeJsonHistogram(os, revWaitHist_[s]);
        os << "}";
    }
    os << "]},\n";
    const double combine_rate =
        delivered_ > 0 ? static_cast<double>(combinedDelivered_) /
                             static_cast<double>(delivered_)
                       : 0.0;
    os << " \"combining\": {\"combined_delivered\": "
       << combinedDelivered_ << ", \"combine_rate\": ";
    writeJsonNumber(os, combine_rate);
    os << ", \"decombines\": " << decombines_
       << ", \"mm_cycles_saved\": " << mmCyclesSaved_
       << ", \"wb_wait\": ";
    writeJsonAccumulator(os, wbWait_);
    os << ", \"fanin_hist\": ";
    writeJsonHistogram(os, fanInHist_);
    os << "},\n";
    // The five hottest heatmap cells, by accumulated wait.
    struct Hot
    {
        bool fwd;
        unsigned s;
        std::uint32_t sw;
        const HeatCell *c;
    };
    std::vector<Hot> hot;
    for (unsigned dir = 0; dir < 2; ++dir) {
        for (unsigned s = 0; s < shape_.stages; ++s) {
            for (std::uint32_t sw = 0; sw < shape_.switchesPerStage;
                 ++sw) {
                const HeatCell &c = heatCell(dir == 0, s, sw);
                if (c.waitCycles > 0)
                    hot.push_back({dir == 0, s, sw, &c});
            }
        }
    }
    // Total order: equal-wait cells tie-break on coordinates, so the
    // top-five list is identical across library sort implementations.
    std::sort(hot.begin(), hot.end(), [](const Hot &a, const Hot &b) {
        if (a.c->waitCycles != b.c->waitCycles)
            return a.c->waitCycles > b.c->waitCycles;
        if (a.fwd != b.fwd)
            return a.fwd && !b.fwd;
        if (a.s != b.s)
            return a.s < b.s;
        return a.sw < b.sw;
    });
    if (hot.size() > 5)
        hot.resize(5);
    os << " \"hot_cells\": [";
    for (std::size_t i = 0; i < hot.size(); ++i) {
        if (i)
            os << ",";
        os << "\n  {\"direction\": \""
           << (hot[i].fwd ? "fwd" : "rev") << "\", \"stage\": "
           << hot[i].s << ", \"switch\": " << hot[i].sw
           << ", \"visits\": " << hot[i].c->visits
           << ", \"wait_cycles\": " << hot[i].c->waitCycles << "}";
    }
    os << "]}\n";
    return os.str();
}

std::string
LatencyObservatory::heatmapCsv() const
{
    std::ostringstream os;
    os << "direction,stage,switch,visits,wait_cycles,mean_wait,"
          "combines\n";
    for (unsigned dir = 0; dir < 2; ++dir) {
        for (unsigned s = 0; s < shape_.stages; ++s) {
            for (std::uint32_t sw = 0; sw < shape_.switchesPerStage;
                 ++sw) {
                const HeatCell &c = heatCell(dir == 0, s, sw);
                const double mean =
                    c.visits > 0
                        ? static_cast<double>(c.waitCycles) /
                              static_cast<double>(c.visits)
                        : 0.0;
                os << (dir == 0 ? "fwd" : "rev") << "," << s << ","
                   << sw << "," << c.visits << "," << c.waitCycles
                   << ",";
                writeJsonNumber(os, mean);
                os << "," << c.combines << "\n";
            }
        }
    }
    return os.str();
}

} // namespace ultra::obs
