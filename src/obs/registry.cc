#include "registry.h"

#include <algorithm>
#include <sstream>

#include "common/log.h"
#include "obs/json.h"

namespace ultra::obs
{

void
Registry::insert(Entry entry)
{
    ULTRA_ASSERT(!entry.path.empty(), "empty statistic path");
    ULTRA_ASSERT(index_.find(entry.path) == index_.end(),
                 "duplicate statistic path '", entry.path, "'");
    index_.emplace(entry.path, entries_.size());
    entries_.push_back(std::move(entry));
}

void
Registry::addScalar(const std::string &path, ValueFn fn, std::string desc)
{
    ULTRA_ASSERT(fn != nullptr, "scalar '", path, "' needs a getter");
    Entry entry;
    entry.path = path;
    entry.desc = std::move(desc);
    entry.kind = Kind::Scalar;
    entry.fn = std::move(fn);
    insert(std::move(entry));
}

void
Registry::addAccumulator(const std::string &path, const Accumulator *acc,
                         std::string desc)
{
    ULTRA_ASSERT(acc != nullptr, "accumulator '", path, "' is null");
    Entry entry;
    entry.path = path;
    entry.desc = std::move(desc);
    entry.kind = Kind::Accumulator;
    entry.acc = acc;
    insert(std::move(entry));
}

void
Registry::addHistogram(const std::string &path, const Histogram *hist,
                       std::string desc)
{
    ULTRA_ASSERT(hist != nullptr, "histogram '", path, "' is null");
    Entry entry;
    entry.path = path;
    entry.desc = std::move(desc);
    entry.kind = Kind::Histogram;
    entry.hist = hist;
    insert(std::move(entry));
}

bool
Registry::has(const std::string &path) const
{
    return index_.find(path) != index_.end();
}

std::vector<std::string>
Registry::paths() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry &entry : entries_)
        out.push_back(entry.path);
    return out;
}

const Registry::Entry &
Registry::find(const std::string &path) const
{
    auto it = index_.find(path);
    ULTRA_ASSERT(it != index_.end(), "unknown statistic '", path, "'");
    return entries_[it->second];
}

double
Registry::value(const std::string &path) const
{
    const Entry &entry = find(path);
    switch (entry.kind) {
      case Kind::Scalar: return entry.fn();
      case Kind::Accumulator: return entry.acc->mean();
      case Kind::Histogram: return entry.hist->mean();
    }
    return 0.0;
}

const Accumulator &
Registry::accumulator(const std::string &path) const
{
    const Entry &entry = find(path);
    ULTRA_ASSERT(entry.kind == Kind::Accumulator, "'", path,
                 "' is not an accumulator");
    return *entry.acc;
}

const Histogram &
Registry::histogram(const std::string &path) const
{
    const Entry &entry = find(path);
    ULTRA_ASSERT(entry.kind == Kind::Histogram, "'", path,
                 "' is not a histogram");
    return *entry.hist;
}

std::string
Registry::jsonDump(Cycle now, const DumpOptions &opts) const
{
    std::vector<const Entry *> order;
    order.reserve(entries_.size());
    for (const Entry &entry : entries_)
        order.push_back(&entry);
    if (opts.sortKeys) {
        // ultralint: allow(UL-DET-005): paths are unique (enforced at
        // registration), so the single key is already a total order.
        std::sort(order.begin(), order.end(),
                  [](const Entry *a, const Entry *b) {
                      return a->path < b->path;
                  });
    }

    std::ostringstream os;
    os << "{\"cycle\": " << now << ", \"stats\": {";
    bool first = true;
    for (const Entry *entry : order) {
        if (!first)
            os << (opts.pretty ? "," : ", ");
        first = false;
        if (opts.pretty)
            os << "\n  ";
        writeJsonString(os, entry->path);
        os << ": ";
        switch (entry->kind) {
          case Kind::Scalar:
            writeJsonNumber(os, entry->fn());
            break;
          case Kind::Accumulator:
            writeJsonAccumulator(os, *entry->acc);
            break;
          case Kind::Histogram:
            writeJsonHistogram(os, *entry->hist);
            break;
        }
    }
    if (opts.pretty)
        os << "\n}}\n";
    else
        os << "}}\n";
    return os.str();
}

std::string
Registry::render() const
{
    std::ostringstream os;
    for (const Entry &entry : entries_) {
        os << entry.path << " = ";
        switch (entry.kind) {
          case Kind::Scalar:
            writeJsonNumber(os, entry.fn());
            break;
          case Kind::Accumulator:
            os << "count " << entry.acc->count() << " mean "
               << entry.acc->mean() << " max " << entry.acc->max();
            break;
          case Kind::Histogram:
            os << "count " << entry.hist->count() << " mean "
               << entry.hist->mean() << " p99 "
               << entry.hist->percentile(0.99);
            break;
        }
        if (!entry.desc.empty())
            os << "  # " << entry.desc;
        os << "\n";
    }
    return os.str();
}

} // namespace ultra::obs
