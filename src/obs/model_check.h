/**
 * @file
 * Continuous Kruskal-Snir cross-check: compare a run's measured
 * one-way transit against the analytic prediction and surface the
 * drift as model.* statistics plus a visible warning when the two
 * diverge beyond tolerance.
 *
 * The comparison is only meaningful when the simulated configuration
 * matches the model's assumptions (uniform packet sizing, no
 * combining, unbounded queues, open-loop uniform traffic below
 * capacity); the caller decides and passes `applicable`.  A
 * non-applicable run still registers its numbers -- model.applicable
 * says how to read them -- but never warns or fails.
 */

#ifndef ULTRA_OBS_MODEL_CHECK_H
#define ULTRA_OBS_MODEL_CHECK_H

#include <string>

#include "analytic/config.h"
#include "analytic/drift.h"

namespace ultra::obs
{

class Registry;

/** The outcome of one sim-vs-model comparison. */
struct ModelReport
{
    analytic::NetworkConfig config;
    double offeredLoad = 0.0;      //!< measured messages/PE/cycle
    double predictedTransit = 0.0; //!< model T(p) + injection hop
    double measuredTransit = 0.0;  //!< sim mean one-way transit
    double drift = 0.0;            //!< (measured - predicted)/predicted
    double tolerance = analytic::kDefaultDriftTolerance;
    bool applicable = false;       //!< config matches model assumptions

    /** Non-applicable runs vacuously pass. */
    bool withinTolerance() const;
};

/** Computes a ModelReport and publishes it. */
class ModelCrossCheck
{
  public:
    ModelCrossCheck(const analytic::NetworkConfig &cfg,
                    double offered_load, double measured_transit,
                    bool applicable,
                    double tolerance = analytic::kDefaultDriftTolerance);

    const ModelReport &report() const { return report_; }

    /**
     * Register model.predicted_transit / measured_transit /
     * offered_load / drift / applicable under "<prefix>.".  Values are
     * captured, so the check may outlive or predecease the registry.
     */
    void registerStats(Registry &registry,
                       const std::string &prefix) const;

    /** Warn (visibly) when applicable and out of tolerance.
     *  @return report().withinTolerance(). */
    bool check() const;

    /** The report as a JSON object. */
    std::string json() const;

  private:
    ModelReport report_;
};

} // namespace ultra::obs

#endif // ULTRA_OBS_MODEL_CHECK_H
