#include "event_trace.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/log.h"
#include "obs/json.h"

namespace ultra::obs
{

EventTrace::EventTrace(std::size_t max_events) : maxEvents_(max_events)
{
    ULTRA_ASSERT(max_events > 0);
}

EventTrace::TrackId
EventTrace::track(const std::string &name)
{
    auto it = trackIndex_.find(name);
    if (it != trackIndex_.end())
        return it->second;
    const TrackId id = static_cast<TrackId>(tracks_.size());
    tracks_.push_back(name);
    trackIndex_.emplace(name, id);
    return id;
}

bool
EventTrace::admit()
{
    if (events_.size() >= maxEvents_) {
        ++dropped_;
        return false;
    }
    return true;
}

void
EventTrace::complete(TrackId track, std::uint32_t tid, const char *name,
                     Cycle start, Cycle duration)
{
    if (!admit())
        return;
    events_.push_back({name, track, tid, start, duration, 0.0, 'X'});
}

void
EventTrace::instant(TrackId track, std::uint32_t tid, const char *name,
                    Cycle at)
{
    if (!admit())
        return;
    events_.push_back({name, track, tid, at, 0, 0.0, 'i'});
}

void
EventTrace::counter(TrackId track, const char *name, Cycle at,
                    double value)
{
    if (!admit())
        return;
    events_.push_back({name, track, 0, at, 0, value, 'C'});
}

void
EventTrace::writeJson(std::ostream &os) const
{
    os << "{\"traceEvents\": [";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",";
        first = false;
        os << "\n ";
    };
    // Metadata names every track ("process") for the viewer.
    for (TrackId id = 0; id < tracks_.size(); ++id) {
        sep();
        os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
           << id + 1 << ", \"tid\": 0, \"args\": {\"name\": ";
        writeJsonString(os, tracks_[id]);
        os << "}}";
    }
    for (const Event &ev : events_) {
        sep();
        os << "{\"name\": ";
        writeJsonString(os, ev.name);
        os << ", \"cat\": \"sim\", \"ph\": \"" << ev.ph
           << "\", \"pid\": " << ev.track + 1 << ", \"tid\": " << ev.tid
           << ", \"ts\": " << ev.ts;
        switch (ev.ph) {
          case 'X':
            // Zero-width intervals are invisible; draw at least 1.
            os << ", \"dur\": " << (ev.dur > 0 ? ev.dur : 1);
            break;
          case 'i':
            os << ", \"s\": \"t\"";
            break;
          case 'C':
            os << ", \"args\": {\"value\": ";
            writeJsonNumber(os, ev.value);
            os << "}";
            break;
        }
        os << "}";
    }
    os << "\n]}\n";
}

std::string
EventTrace::json() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

bool
EventTrace::save(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot write trace events to '", path, "'");
        return false;
    }
    writeJson(out);
    if (dropped_ > 0) {
        warn("trace buffer full: dropped ", dropped_,
             " events after the first ", events_.size());
    }
    return static_cast<bool>(out);
}

} // namespace ultra::obs
