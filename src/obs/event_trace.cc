#include "event_trace.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/log.h"
#include "obs/json.h"

namespace ultra::obs
{

EventTrace::EventTrace(std::size_t max_events) : maxEvents_(max_events)
{
    ULTRA_ASSERT(max_events > 0);
}

EventTrace::TrackId
EventTrace::track(const std::string &name)
{
    auto it = trackIndex_.find(name);
    if (it != trackIndex_.end())
        return it->second;
    const TrackId id = static_cast<TrackId>(tracks_.size());
    tracks_.push_back(name);
    trackIndex_.emplace(name, id);
    return id;
}

bool
EventTrace::admit()
{
    if (events_.size() >= maxEvents_) {
        ++dropped_;
        return false;
    }
    return true;
}

void
EventTrace::complete(TrackId track, std::uint32_t tid, const char *name,
                     Cycle start, Cycle duration, std::uint64_t id,
                     std::uint64_t link)
{
    if (!admit())
        return;
    events_.push_back(
        {name, track, tid, start, duration, 0.0, id, link, 'X'});
}

void
EventTrace::instant(TrackId track, std::uint32_t tid, const char *name,
                    Cycle at, std::uint64_t id, std::uint64_t link)
{
    if (!admit())
        return;
    events_.push_back({name, track, tid, at, 0, 0.0, id, link, 'i'});
}

void
EventTrace::counter(TrackId track, const char *name, Cycle at,
                    double value)
{
    if (!admit())
        return;
    events_.push_back({name, track, 0, at, 0, value, 0, 0, 'C'});
}

void
EventTrace::writeJson(std::ostream &os) const
{
    os << "{\"traceEvents\": [";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",";
        first = false;
        os << "\n ";
    };
    // Metadata names every track ("process") for the viewer.
    for (TrackId id = 0; id < tracks_.size(); ++id) {
        sep();
        os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
           << id + 1 << ", \"tid\": 0, \"args\": {\"name\": ";
        writeJsonString(os, tracks_[id]);
        os << "}}";
    }
    for (const Event &ev : events_) {
        sep();
        os << "{\"name\": ";
        writeJsonString(os, ev.name);
        os << ", \"cat\": \"sim\", \"ph\": \"" << ev.ph
           << "\", \"pid\": " << ev.track + 1 << ", \"tid\": " << ev.tid
           << ", \"ts\": " << ev.ts;
        switch (ev.ph) {
          case 'X':
            // Zero-width intervals are invisible; draw at least 1.
            os << ", \"dur\": " << (ev.dur > 0 ? ev.dur : 1);
            break;
          case 'i':
            os << ", \"s\": \"t\"";
            break;
          case 'C':
            os << ", \"args\": {\"value\": ";
            writeJsonNumber(os, ev.value);
            os << "}";
            break;
        }
        if (ev.ph != 'C' && (ev.id != 0 || ev.link != 0)) {
            os << ", \"args\": {";
            if (ev.id != 0)
                os << "\"id\": " << ev.id;
            if (ev.link != 0)
                os << (ev.id != 0 ? ", " : "") << "\"link\": "
                   << ev.link;
            os << "}";
        }
        os << "}";
    }
    os << "\n]}\n";
}

std::string
EventTrace::json() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

bool
EventTrace::save(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot write trace events to '", path, "'");
        return false;
    }
    writeJson(out);
    if (dropped_ > 0) {
        warn("trace buffer full: dropped ", dropped_,
             " events after the first ", events_.size());
    }
    return static_cast<bool>(out);
}

} // namespace ultra::obs
