#include "sweep/grid.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/json_lite.h"

namespace ultra::sweep
{

namespace
{

/** The accepted grid parameters -- exactly the `ultrasim net` flags
 *  that shape a simulated point. */
enum class ParamKind { Bool, Num, Str };

struct KnownParam
{
    const char *name;
    ParamKind kind;
    bool integral; //!< Num params that must be non-negative integers
};

const KnownParam kKnownParams[] = {
    {"burroughs", ParamKind::Bool, false},
    {"closed", ParamKind::Num, true},
    {"cycles", ParamKind::Num, true},
    {"d", ParamKind::Num, true},
    {"hot", ParamKind::Num, false},
    {"ideal", ParamKind::Bool, false},
    {"k", ParamKind::Num, true},
    {"latency", ParamKind::Bool, false},
    {"m", ParamKind::Num, true},
    {"net-serial", ParamKind::Bool, false},
    {"policy", ParamKind::Str, false},
    {"ports", ParamKind::Num, true},
    {"queue", ParamKind::Num, true},
    {"rate", ParamKind::Num, false},
    {"seed", ParamKind::Num, true},
    {"serial-departures", ParamKind::Bool, false},
    {"threads", ParamKind::Num, true},
    {"uniform", ParamKind::Bool, false},
};

const KnownParam *
findParam(const std::string &name)
{
    for (const KnownParam &p : kKnownParams) {
        if (name == p.name)
            return &p;
    }
    return nullptr;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/** Scalar JSON value -> ParamValue, validated against the parameter's
 *  declared kind. */
bool
paramFromJson(const KnownParam &known, const jsonlite::JsonValue &v,
              ParamValue &out, std::string &err)
{
    switch (known.kind) {
    case ParamKind::Bool:
        if (v.type != jsonlite::JsonValue::Type::Bool) {
            err = "parameter '" + std::string(known.name) +
                  "' must be true/false";
            return false;
        }
        out = ParamValue::boolean(v.boolean);
        return true;
    case ParamKind::Num:
        if (!v.isNumber()) {
            err = "parameter '" + std::string(known.name) +
                  "' must be a number";
            return false;
        }
        if (known.integral &&
            (v.number < 0 || v.number != std::floor(v.number))) {
            err = "parameter '" + std::string(known.name) +
                  "' must be a non-negative integer";
            return false;
        }
        out = ParamValue::number(v.number);
        return true;
    case ParamKind::Str:
        if (!v.isString()) {
            err = "parameter '" + std::string(known.name) +
                  "' must be a string";
            return false;
        }
        out = ParamValue::text(v.string);
        return true;
    }
    return false;
}

/** Expand one grid object, appending points (global indices). */
bool
expandGrid(const jsonlite::JsonValue &grid, std::vector<Point> &points,
           std::string &err)
{
    if (!grid.isObject()) {
        err = "grid entries must be objects";
        return false;
    }
    std::string tag;
    if (grid.has("tag")) {
        if (!grid["tag"].isString()) {
            err = "grid 'tag' must be a string";
            return false;
        }
        tag = grid["tag"].string;
    }
    ParamMap base;
    if (grid.has("base") && !loadParamsJson(grid["base"], base, err))
        return false;

    // Axes in sorted key order (std::map), each a non-empty array of
    // scalars; the last key varies fastest.
    std::vector<std::pair<std::string, std::vector<ParamValue>>> axes;
    if (grid.has("axes")) {
        const jsonlite::JsonValue &ax = grid["axes"];
        if (!ax.isObject()) {
            err = "grid 'axes' must be an object";
            return false;
        }
        for (const auto &kv : ax.object) {
            const KnownParam *known = findParam(kv.first);
            if (known == nullptr) {
                err = "unknown parameter '" + kv.first + "'";
                return false;
            }
            if (!kv.second.isArray() || kv.second.array.empty()) {
                err = "axis '" + kv.first +
                      "' must be a non-empty array";
                return false;
            }
            std::vector<ParamValue> vals;
            for (const jsonlite::JsonValue &v : kv.second.array) {
                ParamValue pv;
                if (!paramFromJson(*known, v, pv, err))
                    return false;
                vals.push_back(pv);
            }
            axes.emplace_back(kv.first, std::move(vals));
        }
    }

    std::size_t seeds = 0; // 0 = no seed replication
    if (grid.has("seeds")) {
        const jsonlite::JsonValue &s = grid["seeds"];
        if (!s.isNumber() || s.number < 1 ||
            s.number != std::floor(s.number)) {
            err = "grid 'seeds' must be a positive integer";
            return false;
        }
        seeds = static_cast<std::size_t>(s.number);
    }
    std::uint64_t seedBase = 1;
    if (grid.has("seed_base")) {
        const jsonlite::JsonValue &s = grid["seed_base"];
        if (!s.isNumber() || s.number < 0 ||
            s.number != std::floor(s.number)) {
            err = "grid 'seed_base' must be a non-negative integer";
            return false;
        }
        seedBase = static_cast<std::uint64_t>(s.number);
    }

    // Odometer over the axes; the replication loop is innermost.
    std::vector<std::size_t> idx(axes.size(), 0);
    for (;;) {
        ParamMap combo = base;
        for (std::size_t a = 0; a < axes.size(); ++a)
            combo[axes[a].first] = axes[a].second[idx[a]];
        const std::size_t reps = seeds == 0 ? 1 : seeds;
        for (std::size_t r = 0; r < reps; ++r) {
            Point pt;
            pt.index = points.size();
            pt.tag = tag;
            pt.params = combo;
            if (seeds != 0) {
                pt.params["seed"] = ParamValue::number(
                    static_cast<double>(
                        derivePointSeed(seedBase, pt.index)));
            } else if (pt.params.count("seed") == 0) {
                pt.params["seed"] = ParamValue::number(1);
            }
            points.push_back(std::move(pt));
        }
        std::size_t a = axes.size();
        while (a-- > 0) {
            if (++idx[a] < axes[a].second.size())
                break;
            idx[a] = 0;
            if (a == 0)
                return true;
        }
        if (axes.empty())
            return true;
    }
}

double
numParam(const ParamMap &params, const char *name, double fallback)
{
    auto it = params.find(name);
    return it == params.end() ? fallback : it->second.num;
}

bool
boolParam(const ParamMap &params, const char *name)
{
    auto it = params.find(name);
    return it != params.end() && it->second.kind == ParamValue::Kind::Bool
               ? it->second.b
               : false;
}

} // namespace

bool
loadParamsJson(const jsonlite::JsonValue &obj, ParamMap &out,
               std::string &err)
{
    if (!obj.isObject()) {
        err = "parameters must be a JSON object";
        return false;
    }
    for (const auto &kv : obj.object) {
        const KnownParam *known = findParam(kv.first);
        if (known == nullptr) {
            err = "unknown parameter '" + kv.first + "'";
            return false;
        }
        ParamValue v;
        if (!paramFromJson(*known, kv.second, v, err))
            return false;
        out[kv.first] = v;
    }
    return true;
}

ParamValue
ParamValue::boolean(bool v)
{
    ParamValue p;
    p.kind = Kind::Bool;
    p.b = v;
    return p;
}

ParamValue
ParamValue::number(double v)
{
    ParamValue p;
    p.kind = Kind::Num;
    p.num = v;
    return p;
}

ParamValue
ParamValue::text(std::string v)
{
    ParamValue p;
    p.kind = Kind::Str;
    p.str = std::move(v);
    return p;
}

std::string
ParamValue::jsonText() const
{
    switch (kind) {
    case Kind::Bool: return b ? "true" : "false";
    case Kind::Str: return "\"" + jsonEscape(str) + "\"";
    case Kind::Num: break;
    }
    char buf[64];
    if (num == std::floor(num) && std::abs(num) < 9e15) {
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(num));
        return buf;
    }
    // Shortest rendering that round-trips exactly: argv built from
    // this text must parse back to the simulated value.
    std::snprintf(buf, sizeof buf, "%g", num);
    if (std::strtod(buf, nullptr) == num)
        return buf;
    std::snprintf(buf, sizeof buf, "%.17g", num);
    return buf;
}

std::uint64_t
derivePointSeed(std::uint64_t base, std::size_t index)
{
    // splitmix64 over a base-and-index mix: stable across platforms,
    // a pure function of its arguments, and free of the correlated
    // low-bit structure of (base + index) itself.
    std::uint64_t z = base + 0x9E3779B97F4A7C15ull *
                                 (static_cast<std::uint64_t>(index) + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    // Keep seeds in a CLI-friendly range: --seed round-trips through
    // strtoull either way, but small positive values read better in
    // grids and argv lines.
    z %= 1000000007ull;
    return z == 0 ? 1 : z;
}

std::vector<Point>
expandGridFile(const std::string &text, std::string &err)
{
    err.clear();
    std::vector<Point> points;
    jsonlite::JsonValue doc;
    try {
        doc = jsonlite::parse(text);
    } catch (const std::exception &e) {
        err = e.what();
        return {};
    }
    if (!doc.isObject() || !doc.has("schema") ||
        !doc["schema"].isString() ||
        doc["schema"].string != "sweep.grid.v1") {
        err = "not a sweep.grid.v1 document (missing/wrong \"schema\")";
        return {};
    }
    if (doc.has("grids")) {
        if (!doc["grids"].isArray()) {
            err = "\"grids\" must be an array";
            return {};
        }
        for (const jsonlite::JsonValue &g : doc["grids"].array) {
            if (!expandGrid(g, points, err))
                return {};
        }
    } else {
        if (!expandGrid(doc, points, err))
            return {};
    }
    if (points.empty())
        err = "grid expands to zero points";
    return err.empty() ? points : std::vector<Point>{};
}

NetPointSpec
specFromParams(const ParamMap &params, std::string &err)
{
    err.clear();
    NetPointSpec spec;
    for (const auto &kv : params) {
        if (findParam(kv.first) == nullptr) {
            err = "unknown parameter '" + kv.first + "'";
            return spec;
        }
    }
    net::NetSimConfig &ncfg = spec.net;
    ncfg.numPorts =
        static_cast<std::uint32_t>(numParam(params, "ports", 256));
    ncfg.k = static_cast<unsigned>(numParam(params, "k", 2));
    ncfg.m = static_cast<unsigned>(numParam(params, "m", ncfg.k));
    ncfg.d = static_cast<unsigned>(numParam(params, "d", 1));
    ncfg.queueCapacityPackets =
        static_cast<std::uint32_t>(numParam(params, "queue", 15));
    ncfg.mmPendingCapacityPackets = ncfg.queueCapacityPackets;
    ncfg.sizing = boolParam(params, "uniform")
                      ? net::PacketSizing::Uniform
                      : net::PacketSizing::ByContent;
    ncfg.burroughsKill = boolParam(params, "burroughs");
    ncfg.idealParacomputer = boolParam(params, "ideal");
    ncfg.parallelDeparture = !boolParam(params, "serial-departures");
    std::string policy = "full";
    if (params.count("policy") != 0)
        policy = params.at("policy").str;
    if (policy == "none") {
        ncfg.combinePolicy = net::CombinePolicy::None;
    } else if (policy == "homo") {
        ncfg.combinePolicy = net::CombinePolicy::Homogeneous;
    } else if (policy == "full") {
        ncfg.combinePolicy = net::CombinePolicy::Full;
    } else {
        err = "unknown policy '" + policy + "'";
        return spec;
    }
    if (!ncfg.valid()) {
        err = "invalid network configuration (ports must be a power "
              "of k, queues >= one message)";
        return spec;
    }

    net::TrafficConfig &tcfg = spec.traffic;
    tcfg.activePes = ncfg.numPorts;
    tcfg.rate = numParam(params, "rate", 0.1);
    tcfg.hotFraction = numParam(params, "hot", 0.0);
    tcfg.hotAddr = 13;
    tcfg.addrSpaceWords = std::uint64_t{ncfg.numPorts} << 8;
    if (params.count("closed") != 0) {
        tcfg.closedLoop = true;
        tcfg.window =
            static_cast<unsigned>(numParam(params, "closed", 1));
    }
    tcfg.seed =
        static_cast<std::uint64_t>(numParam(params, "seed", 1));

    spec.pni.maxOutstanding = tcfg.closedLoop ? 0 : 8;
    spec.cycles =
        static_cast<Cycle>(numParam(params, "cycles", 10000));
    spec.threads =
        static_cast<unsigned>(numParam(params, "threads", 1));
    spec.netSerial = boolParam(params, "net-serial");
    spec.wantLatency = boolParam(params, "latency");
    return spec;
}

std::vector<std::string>
argvForParams(const ParamMap &params)
{
    std::vector<std::string> argv;
    argv.push_back("net");
    for (const auto &kv : params) {
        if (kv.first == "latency")
            continue; // observability, not an `ultrasim net` sim flag
        if (kv.second.kind == ParamValue::Kind::Bool) {
            if (kv.second.b)
                argv.push_back("--" + kv.first);
            continue;
        }
        argv.push_back("--" + kv.first);
        argv.push_back(kv.second.kind == ParamValue::Kind::Str
                           ? kv.second.str
                           : kv.second.jsonText());
    }
    return argv;
}

std::string
pointRecordJson(const Point &point, const std::string &statsDump,
                const NetRunSummary &summary)
{
    std::ostringstream os;
    os << "{\"argv\": [";
    const std::vector<std::string> argv = argvForParams(point.params);
    for (std::size_t i = 0; i < argv.size(); ++i) {
        if (i > 0)
            os << ", ";
        os << "\"" << jsonEscape(argv[i]) << "\"";
    }
    os << "], \"index\": " << point.index << ", \"params\": {";
    bool first = true;
    for (const auto &kv : point.params) {
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << jsonEscape(kv.first)
           << "\": " << kv.second.jsonText();
    }
    // The dump is file-shaped (trailing newline); a record is one
    // line, so embed it trimmed.
    std::string stats = statsDump;
    while (!stats.empty() &&
           (stats.back() == '\n' || stats.back() == '\r')) {
        stats.pop_back();
    }
    os << "}, \"stats\": " << stats
       << ", \"summary\": " << summary.json() << ", \"tag\": \""
       << jsonEscape(point.tag) << "\"}";
    return os.str();
}

std::string
mergeSweepJson(const std::vector<std::string> &records)
{
    std::ostringstream os;
    os << "{\"point_count\": " << records.size() << ", \"points\": [";
    for (std::size_t i = 0; i < records.size(); ++i)
        os << (i == 0 ? "\n" : ",\n") << records[i];
    if (!records.empty())
        os << "\n";
    os << "], \"schema\": \"sweep.v1\"}\n";
    return os.str();
}

bool
isSweepDocument(const std::string &text)
{
    try {
        const jsonlite::JsonValue doc = jsonlite::parse(text);
        return doc.isObject() && doc.has("schema") &&
               doc["schema"].isString() &&
               doc["schema"].string == "sweep.v1";
    } catch (const std::exception &) {
        return false;
    }
}

std::string
emitFig7Json(const std::string &mergedSweep, const std::string &tag,
             std::string &err)
{
    err.clear();
    jsonlite::JsonValue doc;
    try {
        doc = jsonlite::parse(mergedSweep);
    } catch (const std::exception &e) {
        err = e.what();
        return "";
    }
    if (!doc.has("points") || !doc["points"].isArray()) {
        err = "not a sweep.v1 document";
        return "";
    }
    std::ostringstream body;
    double worst = 0.0;
    unsigned long long ports = 0;
    std::size_t count = 0;
    for (const jsonlite::JsonValue &pt : doc["points"].array) {
        if (!pt.isObject() || !pt.has("tag") || pt["tag"].string != tag)
            continue;
        const jsonlite::JsonValue &params = pt["params"];
        const jsonlite::JsonValue &summary = pt["summary"];
        if (summary["model_applicable"].number == 0) {
            err = "point " +
                  std::to_string(static_cast<long long>(
                      pt["index"].number)) +
                  " (tag '" + tag + "') is not model-applicable";
            return "";
        }
        if (ports == 0) {
            ports = static_cast<unsigned long long>(
                params["ports"].number);
        }
        const double drift = summary["drift"].number;
        worst = std::max(worst, std::abs(drift));
        if (count > 0)
            body << ",\n";
        body << "    {\"k\": "
             << static_cast<unsigned>(params["k"].number)
             << ", \"d\": " << static_cast<unsigned>(params["d"].number)
             << ", \"p\": " << params["rate"].number
             << ", \"predicted\": " << summary["predicted_transit"].number
             << ", \"measured\": " << summary["measured_transit"].number
             << ", \"drift\": " << drift << "}";
        ++count;
    }
    if (count == 0) {
        err = "no points with tag '" + tag + "'";
        return "";
    }
    std::ostringstream out;
    out << "{\n  \"bench\": \"fig7_transit_time\",\n"
        << "  \"ports\": " << ports << ",\n"
        << "  \"tolerance\": " << analytic::kDefaultDriftTolerance
        << ",\n"
        << "  \"worst_abs_drift\": " << worst << ",\n"
        << "  \"points\": [\n"
        << body.str() << "\n  ]\n}\n";
    return out.str();
}

std::string
emitHotspotJson(const std::string &mergedSweep, const std::string &tag,
                std::string &err)
{
    err.clear();
    jsonlite::JsonValue doc;
    try {
        doc = jsonlite::parse(mergedSweep);
    } catch (const std::exception &e) {
        err = e.what();
        return "";
    }
    if (!doc.has("points") || !doc["points"].isArray()) {
        err = "not a sweep.v1 document";
        return "";
    }
    std::ostringstream body;
    std::size_t count = 0;
    for (const jsonlite::JsonValue &pt : doc["points"].array) {
        if (!pt.isObject() || !pt.has("tag") || pt["tag"].string != tag)
            continue;
        const jsonlite::JsonValue &params = pt["params"];
        const jsonlite::JsonValue &summary = pt["summary"];
        if (!summary.has("lat")) {
            err = "point " +
                  std::to_string(static_cast<long long>(
                      pt["index"].number)) +
                  " (tag '" + tag +
                  "') has no latency analytics; set \"latency\": true";
            return "";
        }
        const jsonlite::JsonValue &lat = summary["lat"];
        const auto u64 = [](const jsonlite::JsonValue &v) {
            return static_cast<unsigned long long>(v.number);
        };
        if (count > 0)
            body << ",\n";
        body << "    {\"ports\": " << u64(params["ports"])
             << ", \"ops_per_cycle\": "
             << summary["ops_per_cycle"].number
             << ", \"access_time\": " << summary["access_mean"].number
             << ", \"combined_fraction\": "
             << summary["combined_fraction"].number
             << ", \"delivered\": " << u64(lat["delivered"])
             << ", \"combined_delivered\": "
             << u64(lat["combined_delivered"])
             << ", \"mm_cycles_saved\": " << u64(lat["mm_cycles_saved"])
             << ", \"fanin_p50\": " << u64(lat["fanin_p50"])
             << ", \"fanin_max\": " << u64(lat["fanin_max"])
             << ", \"violations\": " << u64(lat["violations"]) << "}";
        ++count;
    }
    if (count == 0) {
        err = "no points with tag '" + tag + "'";
        return "";
    }
    std::ostringstream out;
    out << "{\n  \"bench\": \"hotspot_combining\",\n"
        << "  \"design\": \"combining\",\n  \"runs\": [\n"
        << body.str() << "\n  ]\n}\n";
    return out.str();
}

} // namespace ultra::sweep
