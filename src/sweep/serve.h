/**
 * @file
 * `ultrasim serve` -- simulation as a service (ultra::sweep).
 *
 * A persistent server on the ultra::inspect line-oriented JSON
 * transport (TCP port or unix socket): clients submit net-mode
 * simulation jobs and the server streams results back, one JSON object
 * per line.  Protocol "ultra.serve.v1":
 *
 *   -> {"cmd": "ping"}
 *   <- {"event": "pong", "ok": 1, "schema": "ultra.serve.v1"}
 *
 *   -> {"cmd": "sim", "params": {"ports": 16, "rate": 0.1, ...},
 *       "prof": true?, "out": "stats.json"?,
 *       "latency_out": "lat.json"?}
 *   <- {"cached": 0|1, "event": "result", "index": N, "ok": 1,
 *       ["prof": {...},] "stats": {...}, "summary": {...}}
 *
 *   -> {"cmd": "status"}   server counters
 *   -> {"cmd": "shutdown"} reply {"event": "bye", "ok": 1}, then exit
 *
 * `params` takes exactly the `ultrasim net` flag names (the grid
 * vocabulary of sweep/grid.h); `out` writes the stats dump to a file
 * with the same bytes a standalone `ultrasim net --stats-json` run
 * would produce -- the determinism contract the serve_test pins.
 * Errors reply {"error": "...", "event": "error", "ok": 0} and the
 * server keeps serving; a client disconnect (even mid-job) never
 * wedges it -- the in-flight job completes (its "out" files still
 * land), its reply is dropped rather than delivered to whichever
 * client attaches next, and the next client gets a clean line.
 *
 * Between jobs the server keeps warmed machine configurations: a
 * pristine (memory, network) rig per recent configuration, handed to
 * the next matching job and replaced with a freshly built one.  Rigs
 * are cached before first use only, so a cache hit is byte-identical
 * to a cold build by construction.  The tick engine persists across
 * jobs of the same thread count, and one profiler is reused with a
 * reset per job (Profiler::reset) so reports never leak across jobs.
 */

#ifndef ULTRA_SWEEP_SERVE_H
#define ULTRA_SWEEP_SERVE_H

#include <cstddef>
#include <string>

namespace ultra::sweep
{

struct ServeOptions
{
    unsigned threads = 1;        //!< default job threads (0 = cores)
    std::size_t cacheCapacity = 4; //!< warmed configurations kept
};

/** Run the server loop on @p addr (an all-digit string is a TCP port
 *  on 127.0.0.1, 0 picks an ephemeral one; anything else is a
 *  unix-socket path).  Returns the process exit code. */
int serveMain(const std::string &addr, const ServeOptions &opts);

} // namespace ultra::sweep

#endif // ULTRA_SWEEP_SERVE_H
