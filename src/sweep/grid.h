/**
 * @file
 * Sweep grids (ultra::sweep): a JSON parameter grid expands into a
 * deterministic, totally-ordered list of experiment points.
 *
 * Grid file schema ("sweep.grid.v1"):
 *
 *     {"schema": "sweep.grid.v1",
 *      "grids": [
 *        {"tag": "smoke",
 *         "base": {"ports": 16, "cycles": 400},
 *         "axes": {"rate": [0.05, 0.1], "hot": [0.0, 0.25]},
 *         "seeds": 2,
 *         "seed_base": 1}]}
 *
 * (A single-grid file may also put tag/base/axes at top level.)  Every
 * parameter name is an `ultrasim net` flag; unknown names are rejected
 * -- a typo must never silently become a default-configured
 * experiment, the same contract the CLI enforces.
 *
 * Expansion is canonical: axes iterate in sorted key order (the last
 * key fastest), an optional `seeds` replication is the innermost
 * dimension, and grids expand in file order.  The per-point seed is a
 * pure function of (seed_base, global point index) -- never of worker
 * scheduling -- which is what makes a sweep's merged output
 * byte-identical at any worker count.
 */

#ifndef ULTRA_SWEEP_GRID_H
#define ULTRA_SWEEP_GRID_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sweep/net_run.h"

namespace jsonlite
{
struct JsonValue;
} // namespace jsonlite

namespace ultra::sweep
{

/** One grid parameter value, with its canonical JSON rendering. */
struct ParamValue
{
    enum class Kind { Bool, Num, Str };
    Kind kind = Kind::Num;
    bool b = false;
    double num = 0.0;
    std::string str;

    static ParamValue boolean(bool v);
    static ParamValue number(double v);
    static ParamValue text(std::string v);

    /** Canonical JSON text (round-trips exactly through strtod). */
    std::string jsonText() const;
};

/** Resolved parameters of one point, sorted by name. */
using ParamMap = std::map<std::string, ParamValue>;

/** One expanded experiment point. */
struct Point
{
    std::size_t index = 0; //!< global index across the whole file
    std::string tag;       //!< owning grid's tag ("" when unset)
    ParamMap params;       //!< includes the resolved "seed"
};

/** Deterministic per-point seed: splitmix64 over (base, index).  The
 *  pure-function-of-index contract is pinned by sweep_test. */
std::uint64_t derivePointSeed(std::uint64_t base, std::size_t index);

/**
 * Parse + expand a "sweep.grid.v1" document.  On any problem (bad
 * JSON, wrong schema, unknown parameter, non-array axis) returns an
 * empty vector with @p err set; err is empty on success.
 */
std::vector<Point> expandGridFile(const std::string &text,
                                  std::string &err);

/** Map a point's parameters onto a run spec.  Unknown names, bad
 *  values and invalid network configurations set @p err. */
NetPointSpec specFromParams(const ParamMap &params, std::string &err);

/** Load a parsed JSON object of parameters (the `--serve` job shape)
 *  into @p out, validating names and value kinds exactly like the
 *  grid loader.  Returns false with @p err set on any problem. */
bool loadParamsJson(const jsonlite::JsonValue &obj, ParamMap &out,
                    std::string &err);

/** The `ultrasim net` argument vector reproducing @p params (without
 *  any output flags): ["net", "--ports", "16", ...]. */
std::vector<std::string> argvForParams(const ParamMap &params);

/**
 * One sweep.v1 point record (a single line):
 *
 *   {"argv": [...], "index": N, "params": {...}, "stats": <dump>,
 *    "summary": {...}, "tag": "..."}
 *
 * @p statsDump is embedded verbatim, so the record's bytes equal the
 * standalone --stats-json bytes wherever they overlap.
 */
std::string pointRecordJson(const Point &point,
                            const std::string &statsDump,
                            const NetRunSummary &summary);

/** Merge point records (already in index order) into a sweep.v1
 *  document.  Pure concatenation: merged bytes depend only on the
 *  records, never on worker count or completion order. */
std::string mergeSweepJson(const std::vector<std::string> &records);

/** True when @p doc parses as a sweep.v1 document. */
bool isSweepDocument(const std::string &text);

/**
 * Render BENCH_fig7.json from the merged records carrying @p tag
 * (schema-compatible with bench/fig7_transit_time.cc).  Returns ""
 * and sets @p err when no point with the tag is model-applicable.
 */
std::string emitFig7Json(const std::string &mergedSweep,
                         const std::string &tag, std::string &err);

/** Render BENCH_hotspot.json (schema-compatible with
 *  bench/hotspot_combining.cc) from records carrying @p tag. */
std::string emitHotspotJson(const std::string &mergedSweep,
                            const std::string &tag, std::string &err);

} // namespace ultra::sweep

#endif // ULTRA_SWEEP_GRID_H
