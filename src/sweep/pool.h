/**
 * @file
 * Fork-based worker pool for sweep jobs (ultra::sweep).
 *
 * Each job runs in its own forked child: a crash (segfault, OOM kill,
 * stuck simulation) takes down one point, not the sweep.  The parent
 * reaps completions, SIGKILLs jobs that exceed the per-job timeout,
 * and retries failures with exponential backoff up to a fixed attempt
 * budget.  Children communicate results through the filesystem only --
 * a per-point output file named by the point index -- so the merged
 * sweep output is a pure function of the job list, never of worker
 * count or completion order.
 *
 * Core counting (detectHostCores) is the `par_speedup` honesty logic,
 * hoisted here so every consumer agrees: containers often pin CPU
 * affinity below the advertised core count (or report 0), and a pool
 * sized against the wrong denominator either oversubscribes or idles.
 */

#ifndef ULTRA_SWEEP_POOL_H
#define ULTRA_SWEEP_POOL_H

#include <cstddef>
#include <cstdint>
#include <functional>

namespace ultra::sweep
{

/** Honest usable-core count:
 *  max(hardware_concurrency, sched_getaffinity), at least 1. */
unsigned detectHostCores();

struct PoolOptions
{
    unsigned workers = 1;     //!< concurrent children (>= 1)
    unsigned maxAttempts = 3; //!< total tries per job (>= 1)
    std::uint64_t timeoutNs = 0; //!< per-attempt wall budget (0 = none)
    std::uint64_t backoffNs = 0; //!< retry delay, doubled per attempt
};

struct PoolOutcome
{
    std::size_t succeeded = 0;
    std::size_t failed = 0;  //!< jobs that exhausted every attempt
    std::size_t retried = 0; //!< extra attempts across all jobs
};

/**
 * Run jobs 0..count-1 across forked workers.  @p fn executes in the
 * child and its return value becomes the child's exit status (0 =
 * success); a nonzero exit, a fatal signal or a timeout all count as
 * a failed attempt and trigger a retry while attempts remain.
 */
PoolOutcome
runForkPool(std::size_t count,
            const std::function<int(std::size_t index, unsigned attempt)> &fn,
            const PoolOptions &opts);

} // namespace ultra::sweep

#endif // ULTRA_SWEEP_POOL_H
