#include "sweep/serve.h"

#include <cstdio>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "common/json_lite.h"
#include "inspect/server.h"
#include "obs/latency.h"
#include "obs/model_check.h"
#include "par/tick_engine.h"
#include "prof/profiler.h"
#include "sweep/grid.h"
#include "sweep/net_run.h"

namespace ultra::sweep
{

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

std::string
errorReply(const std::string &msg)
{
    return "{\"error\": \"" + jsonEscape(msg) +
           "\", \"event\": \"error\", \"ok\": 0}";
}

void
writeTextFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "serve: cannot write %s\n", path.c_str());
        return;
    }
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
}

/** Splice `, "key": value` before the closing brace of @p object. */
std::string
spliceJson(const std::string &object, const std::string &key,
           const std::string &value)
{
    const std::size_t end = object.rfind('}');
    if (end == std::string::npos)
        return object;
    return object.substr(0, end) + ", \"" + key + "\": " + value + "}" +
           object.substr(end + 1);
}

std::string
stringField(const jsonlite::JsonValue &req, const char *key)
{
    if (req.has(key) && req[key].isString())
        return req[key].string;
    return "";
}

bool
boolField(const jsonlite::JsonValue &req, const char *key)
{
    return req.has(key) &&
           req[key].type == jsonlite::JsonValue::Type::Bool &&
           req[key].boolean;
}

/** Everything the server keeps warm between jobs. */
struct ServerState
{
    /** Pristine rigs in insertion order (FIFO eviction). */
    std::vector<std::pair<std::string, WarmRig>> cache;
    std::unique_ptr<par::TickEngine> engine;
    prof::Profiler profiler;
    std::size_t jobsDone = 0;
    std::size_t cacheHits = 0;
};

std::string
handleSim(const jsonlite::JsonValue &req, const ServeOptions &opts,
          ServerState &state)
{
    ParamMap params;
    std::string err;
    if (req.has("params") &&
        !loadParamsJson(req["params"], params, err)) {
        return errorReply(err);
    }
    NetPointSpec spec = specFromParams(params, err);
    if (!err.empty())
        return errorReply(err);
    if (boolField(req, "latency"))
        spec.wantLatency = true;
    if (params.count("threads") == 0)
        spec.threads = opts.threads;
    const bool wantProf = boolField(req, "prof");

    // Hand a warmed pristine rig to a matching job; the experiment
    // double-checks the key and cold-builds on any mismatch.
    const std::string key = netConfigKey(spec.net);
    WarmRig warm;
    bool cached = false;
    for (auto it = state.cache.begin(); it != state.cache.end(); ++it) {
        if (it->first == key) {
            warm = std::move(it->second);
            state.cache.erase(it);
            cached = true;
            ++state.cacheHits;
            break;
        }
    }
    NetExperiment exp(spec, std::move(warm));

    // The engine persists across jobs of the same thread count;
    // NetExperiment adopts it only when the count matches, so a
    // mismatched request silently gets its own engine.
    unsigned threads = par::TickEngine::resolveThreads(spec.threads);
    if (threads > spec.traffic.activePes && spec.traffic.activePes > 0)
        threads = spec.traffic.activePes;
    if (state.engine == nullptr || state.engine->threads() != threads)
        state.engine = std::make_unique<par::TickEngine>(threads);

    NetExperiment::Hooks hooks;
    hooks.engine = state.engine.get();
    if (wantProf) {
        // One profiler serves every job; without the reset a warmed
        // machine would leak laps across jobs (the serve_test pin).
        state.profiler.reset();
        hooks.prof = &state.profiler;
    }
    exp.run(hooks);

    const obs::DumpOptions dump{.sortKeys = true, .pretty = false};
    const std::string stats = exp.statsJson(dump);
    const std::string out = stringField(req, "out");
    if (!out.empty())
        writeTextFile(out, stats);
    const std::string latencyOut = stringField(req, "latency_out");
    if (!latencyOut.empty() && exp.latency() != nullptr) {
        writeTextFile(latencyOut,
                      spliceJson(exp.latency()->summaryJson(), "model",
                                 exp.model().json()) +
                          "\n");
    }

    // The dump is file-shaped (trailing newline); the reply is one
    // protocol line, so embed it trimmed.
    std::string statsLine = stats;
    while (!statsLine.empty() && (statsLine.back() == '\n' ||
                                  statsLine.back() == '\r')) {
        statsLine.pop_back();
    }
    std::ostringstream reply;
    reply << "{\"cached\": " << (cached ? 1 : 0)
          << ", \"event\": \"result\", \"index\": " << state.jobsDone
          << ", \"ok\": 1";
    if (wantProf)
        reply << ", \"prof\": " << state.profiler.reportJson();
    reply << ", \"stats\": " << statsLine
          << ", \"summary\": " << exp.summary().json() << "}";
    ++state.jobsDone;

    // Refill: a freshly built pristine rig replaces whatever this job
    // consumed, so the next same-config job skips construction.
    if (opts.cacheCapacity > 0) {
        state.cache.emplace_back(key, buildWarmRig(spec.net));
        if (state.cache.size() > opts.cacheCapacity)
            state.cache.erase(state.cache.begin());
    }
    return reply.str();
}

} // namespace

int
serveMain(const std::string &addr, const ServeOptions &opts)
{
    std::string err;
    std::unique_ptr<inspect::InspectServer> server =
        inspect::InspectServer::listen(addr, err);
    if (server == nullptr) {
        std::fprintf(stderr, "serve %s: %s\n", addr.c_str(),
                     err.c_str());
        return 2;
    }
    std::fprintf(stderr, "serve: listening on %s\n",
                 server->where().c_str());
    std::fflush(stderr);

    ServerState state;
    std::string line;
    for (;;) {
        if (!server->wait(line)) {
            // Client vanished (possibly with a job mid-flight): clear
            // the disconnect note and go back to accepting clients.
            server->takeDisconnects();
            continue;
        }
        jsonlite::JsonValue req;
        try {
            req = jsonlite::parse(line);
        } catch (const std::exception &e) {
            server->send(errorReply(e.what()));
            continue;
        }
        if (!req.isObject() || !req.has("cmd") ||
            !req["cmd"].isString()) {
            server->send(errorReply("expected {\"cmd\": ...}"));
            continue;
        }
        const std::string cmd = req["cmd"].string;
        std::string reply;
        bool bye = false;
        if (cmd == "ping") {
            reply = "{\"event\": \"pong\", \"ok\": 1, "
                    "\"schema\": \"ultra.serve.v1\"}";
        } else if (cmd == "status") {
            std::ostringstream os;
            os << "{\"cache_hits\": " << state.cacheHits
               << ", \"cached_configs\": " << state.cache.size()
               << ", \"event\": \"status\", \"jobs_done\": "
               << state.jobsDone << ", \"ok\": 1, \"schema\": "
               << "\"ultra.serve.v1\"}";
            reply = os.str();
        } else if (cmd == "shutdown") {
            reply = "{\"event\": \"bye\", \"ok\": 1}";
            bye = true;
        } else if (cmd == "sim") {
            reply = handleSim(req, opts, state);
        } else {
            reply = errorReply("unknown cmd '" + cmd + "'");
        }
        // The requester may have vanished while the job ran and a new
        // client already attached: a reply must never cross clients,
        // so a disconnect since the request arrived drops it.
        if (server->takeDisconnects() == 0)
            server->send(reply);
        if (bye)
            return 0;
    }
}

} // namespace ultra::sweep
