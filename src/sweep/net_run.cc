#include "sweep/net_run.h"

#include <sstream>
#include <vector>

#include "obs/event_trace.h"
#include "obs/json.h"
#include "obs/latency.h"
#include "obs/sampler.h"
#include "par/shard.h"
#include "par/tick_engine.h"
#include "prof/profiler.h"

namespace ultra::sweep
{

WarmRig
buildWarmRig(const net::NetSimConfig &cfg)
{
    WarmRig rig;
    mem::MemoryConfig mcfg;
    mcfg.numModules = cfg.numPorts;
    mcfg.wordsPerModule = 1 << 14;
    mcfg.accessTime = cfg.mmAccessTime;
    rig.memory = std::make_unique<mem::MemorySystem>(mcfg);
    rig.network = std::make_unique<net::Network>(cfg, *rig.memory);
    return rig;
}

std::string
netConfigKey(const net::NetSimConfig &cfg)
{
    // Every field that shapes memory/network construction, in a fixed
    // order; two configurations with equal keys build identical rigs.
    std::ostringstream os;
    os << "ports=" << cfg.numPorts << ";k=" << cfg.k << ";m=" << cfg.m
       << ";d=" << cfg.d << ";data=" << cfg.dataPackets
       << ";sizing=" << static_cast<int>(cfg.sizing)
       << ";q=" << cfg.queueCapacityPackets
       << ";wb=" << cfg.waitBufferCapacity
       << ";policy=" << static_cast<int>(cfg.combinePolicy)
       << ";maxcomb=" << cfg.maxCombinesPerVisit
       << ";mmaccess=" << cfg.mmAccessTime
       << ";mmpend=" << cfg.mmPendingCapacityPackets
       << ";kill=" << (cfg.burroughsKill ? 1 : 0)
       << ";groups=" << cfg.shardGroupTarget
       << ";pdep=" << (cfg.parallelDeparture ? 1 : 0)
       << ";ideal=" << (cfg.idealParacomputer ? 1 : 0);
    return os.str();
}

NetExperiment::NetExperiment(const NetPointSpec &spec, WarmRig warm)
    : spec_(spec)
{
    // Adopt the warm rig only when it was built for this exact
    // configuration; a mismatch silently falls back to a cold build so
    // a stale cache entry can never distort an experiment.
    if (warm.network != nullptr &&
        netConfigKey(warm.network->config()) == netConfigKey(spec_.net)) {
        memory_ = std::move(warm.memory);
        network_ = std::move(warm.network);
    } else {
        WarmRig fresh = buildWarmRig(spec_.net);
        memory_ = std::move(fresh.memory);
        network_ = std::move(fresh.network);
    }
    hash_ = std::make_unique<mem::AddressHash>(
        log2Exact(memory_->totalWords()), true);
    pni_ = std::make_unique<net::PniArray>(spec_.pni, *network_, *hash_);
    traffic_ = std::make_unique<net::TrafficGenerator>(spec_.traffic,
                                                       *pni_, *network_);

    network_->registerStats(registry_, "net");
    pni_->registerStats(registry_, "pni");
    memory_->registerStats(registry_, "mem");

    // Attach while the network is still quiescent; the aggregates
    // therefore cover the warmup as well (unlike the registry stats,
    // which are reset after it).
    if (spec_.wantLatency) {
        obs::LatencyShape shape;
        shape.stages = network_->topology().stages();
        shape.switchesPerStage = network_->topology().switchesPerStage();
        shape.mmAccessTime = spec_.net.mmAccessTime;
        latency_ = std::make_unique<obs::LatencyObservatory>(shape);
        network_->setLatencyObservatory(latency_.get());
        latency_->registerStats(registry_, "lat");
    }

    acfg_.n = spec_.net.numPorts;
    acfg_.k = spec_.net.k;
    acfg_.m = spec_.net.m;
    acfg_.d = spec_.net.d;
    applicable_ =
        acfg_.valid() && spec_.net.sizing == net::PacketSizing::Uniform &&
        spec_.net.combinePolicy == net::CombinePolicy::None &&
        !spec_.net.burroughsKill && !spec_.net.idealParacomputer &&
        spec_.net.queueCapacityPackets == 0 &&
        spec_.net.mmPendingCapacityPackets == 0 &&
        spec_.traffic.hotFraction == 0.0 && !spec_.traffic.closedLoop;
}

NetExperiment::~NetExperiment() = default;

void
NetExperiment::run(const Hooks &hooks)
{
    // Host parallelism: traffic generation (the compute phase here) is
    // sharded across threads; PNI issue + network tick stay sequential.
    unsigned threads = par::TickEngine::resolveThreads(spec_.threads);
    if (threads > spec_.traffic.activePes && spec_.traffic.activePes > 0)
        threads = spec_.traffic.activePes;
    std::unique_ptr<par::TickEngine> own;
    par::TickEngine *engine = hooks.engine;
    if (engine == nullptr || engine->threads() != threads) {
        own = std::make_unique<par::TickEngine>(threads);
        engine = own.get();
    }
    if (!spec_.netSerial)
        network_->setTickEngine(engine);
    const par::ShardPlan plan =
        par::ShardPlan::contiguous(spec_.traffic.activePes, threads);
    std::vector<unsigned> shard_of(spec_.net.numPorts, 0);
    for (std::uint32_t pe = 0; pe < spec_.traffic.activePes; ++pe)
        shard_of[pe] = plan.shardOf(pe);
    pni_->setShardMap(threads, std::move(shard_of));

    prof::Profiler *const pr = hooks.prof;
    engine->setProfiler(pr);
    network_->setProfiler(pr);
    if (hooks.trace != nullptr)
        network_->setEventTrace(hooks.trace);

    if (pr != nullptr)
        pr->runBegin();
    // Lap clock for phase attribution; the network laps its own
    // sub-phases, so the tick only re-stamps after it.
    std::uint64_t mark = pr != nullptr ? prof::Profiler::nowNs() : 0;
    const auto lap = [&](prof::Phase p) {
        if (pr == nullptr)
            return;
        const std::uint64_t next = prof::Profiler::nowNs();
        pr->phaseAdd(p, next - mark);
        mark = next;
    };
    // Sampling covers the warmup too, so the series shows queues
    // ramping from cold.
    auto runSampled = [&](Cycle count) {
        for (Cycle c = 0; c < count; ++c) {
            // The pause fence: between ticks nothing is mid-flight, so
            // an inspector may block, dump and watch here.
            if (hooks.atCycle)
                hooks.atCycle(network_->now());
            lap(prof::Phase::Hook);
            if (pr != nullptr)
                pr->setEpisodePhase(prof::Phase::Inject);
            engine->forEachShard([&](unsigned shard) {
                const par::ShardRange r = plan.range(shard);
                traffic_->tickRange(static_cast<PEId>(r.begin),
                                    static_cast<PEId>(r.end));
            });
            lap(prof::Phase::Inject);
            pni_->tick();
            lap(prof::Phase::Pni);
            network_->tick();
            if (pr != nullptr)
                mark = prof::Profiler::nowNs();
            if (hooks.sampler != nullptr && hooks.sampleEvery != 0 &&
                network_->now() % hooks.sampleEvery == 0) {
                hooks.sampler->sample(network_->now());
            }
            lap(prof::Phase::Sampler);
            if (pr != nullptr && hooks.trace != nullptr &&
                network_->now() % 64 == 0) {
                pr->flushCounters(*hooks.trace, network_->now());
            }
        }
    };
    runSampled(spec_.cycles / 5); // warm up
    network_->resetStats();
    pni_->resetStats();
    statsResetAt_ = network_->now();
    runSampled(spec_.cycles);
    if (pr != nullptr)
        pr->runEnd(network_->now());

    // Compare the measured post-warmup mean one-way transit against
    // the model's prediction at the measured accepted load.
    // Non-applicable configurations still publish their numbers with
    // model.applicable = 0.
    const auto &stats = network_->stats();
    const double offered = static_cast<double>(stats.injected) /
                           static_cast<double>(spec_.cycles) /
                           spec_.net.numPorts;
    model_ = std::make_unique<obs::ModelCrossCheck>(
        acfg_, offered, stats.oneWayTransit.mean(), applicable_,
        spec_.driftTolerance);
    model_->registerStats(registry_, "model");
    modelOk_ = model_->check();
    ran_ = true;
}

std::string
NetExperiment::statsJson(const obs::DumpOptions &opts) const
{
    return registry_.jsonDump(network_->now(), opts);
}

NetRunSummary
NetExperiment::summary() const
{
    NetRunSummary s;
    const auto &stats = network_->stats();
    const double cycles = static_cast<double>(spec_.cycles);
    s.injected = stats.injected;
    s.delivered = stats.delivered;
    s.combined = stats.combined;
    s.killed = stats.killed;
    s.mmServed = stats.mmServed;
    s.offered = static_cast<double>(stats.injected) / cycles /
                spec_.net.numPorts;
    s.opsPerCycle = static_cast<double>(stats.delivered) / cycles;
    s.combinedFraction =
        stats.injected != 0 ? static_cast<double>(stats.combined) /
                                  static_cast<double>(stats.injected)
                            : 0.0;
    s.oneWayMean = stats.oneWayTransit.mean();
    s.oneWayMax = stats.oneWayTransit.max();
    s.roundTripMean = stats.roundTrip.mean();
    s.rtP50 = stats.roundTripHist.percentile(0.5);
    s.rtP95 = stats.roundTripHist.percentile(0.95);
    s.rtP99 = stats.roundTripHist.percentile(0.99);
    s.accessMean = pni_->stats().accessTime.mean();
    s.mmQueueWaitMean = stats.mmQueueWait.mean();
    if (ran_) {
        const obs::ModelReport &mr = model_->report();
        s.modelApplicable = mr.applicable;
        s.modelOk = modelOk_;
        s.predictedTransit = mr.predictedTransit;
        s.measuredTransit = mr.measuredTransit;
        s.drift = mr.drift;
    }
    if (latency_ != nullptr) {
        s.hasLatency = true;
        s.latDelivered = latency_->delivered();
        s.latCombinedDelivered = latency_->combinedDelivered();
        s.latMmCyclesSaved = latency_->mmCyclesSaved();
        s.latViolations = latency_->violations();
        const Histogram &h = latency_->fanInHist();
        if (h.count() > 0) {
            s.fanInP50 = h.percentile(0.5);
            for (std::size_t b = h.numBins(); b-- > 0;) {
                if (h.binCount(b) > 0) {
                    s.fanInMax = b * h.binWidth();
                    break;
                }
            }
        }
    }
    return s;
}

std::string
NetRunSummary::json() const
{
    // Keys sorted (the sweep.v1 byte-determinism contract): a point
    // record's bytes depend only on the simulated outcome.
    std::ostringstream os;
    const auto num = [&os](double x) { obs::writeJsonNumber(os, x); };
    os << "{\"access_mean\": ";
    num(accessMean);
    os << ", \"combined\": " << combined << ", \"combined_fraction\": ";
    num(combinedFraction);
    os << ", \"delivered\": " << delivered << ", \"drift\": ";
    num(drift);
    os << ", \"injected\": " << injected << ", \"killed\": " << killed;
    if (hasLatency) {
        os << ", \"lat\": {\"combined_delivered\": "
           << latCombinedDelivered << ", \"delivered\": " << latDelivered
           << ", \"fanin_max\": " << fanInMax
           << ", \"fanin_p50\": " << fanInP50
           << ", \"mm_cycles_saved\": " << latMmCyclesSaved
           << ", \"violations\": " << latViolations << "}";
    }
    os << ", \"measured_transit\": ";
    num(measuredTransit);
    os << ", \"mm_queue_wait_mean\": ";
    num(mmQueueWaitMean);
    os << ", \"mm_served\": " << mmServed
       << ", \"model_applicable\": " << (modelApplicable ? 1 : 0)
       << ", \"model_within_tolerance\": " << (modelOk ? 1 : 0)
       << ", \"offered\": ";
    num(offered);
    os << ", \"one_way_max\": ";
    num(oneWayMax);
    os << ", \"one_way_mean\": ";
    num(oneWayMean);
    os << ", \"ops_per_cycle\": ";
    num(opsPerCycle);
    os << ", \"predicted_transit\": ";
    num(predictedTransit);
    os << ", \"round_trip_mean\": ";
    num(roundTripMean);
    os << ", \"rt_p50\": " << rtP50 << ", \"rt_p95\": " << rtP95
       << ", \"rt_p99\": " << rtP99 << "}";
    return os.str();
}

} // namespace ultra::sweep
