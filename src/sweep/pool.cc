#include "sweep/pool.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <thread>
#include <vector>

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#ifdef __linux__
#include <sched.h>
#endif

#include "prof/profiler.h"

namespace ultra::sweep
{

unsigned
detectHostCores()
{
    unsigned cores = std::thread::hardware_concurrency();
#ifdef __linux__
    cpu_set_t set;
    CPU_ZERO(&set);
    if (sched_getaffinity(0, sizeof set, &set) == 0) {
        cores =
            std::max(cores, static_cast<unsigned>(CPU_COUNT(&set)));
    }
#endif
    return std::max(cores, 1u);
}

namespace
{

struct Pending
{
    std::size_t index = 0;
    unsigned attempt = 0;          //!< attempts already consumed
    std::uint64_t eligibleNs = 0;  //!< earliest launch time (backoff)
};

struct Running
{
    pid_t pid = -1;
    std::size_t index = 0;
    unsigned attempt = 0;
    std::uint64_t startNs = 0;
    bool killed = false;
};

} // namespace

PoolOutcome
runForkPool(std::size_t count,
            const std::function<int(std::size_t, unsigned)> &fn,
            const PoolOptions &opts)
{
    PoolOutcome out;
    const unsigned workers = std::max(opts.workers, 1u);
    const unsigned maxAttempts = std::max(opts.maxAttempts, 1u);

    std::deque<Pending> pending;
    for (std::size_t i = 0; i < count; ++i)
        pending.push_back(Pending{i, 0, 0});
    std::vector<Running> running;

    const auto fail = [&](std::size_t index, unsigned attempt) {
        const unsigned used = attempt + 1;
        if (used >= maxAttempts) {
            ++out.failed;
            return;
        }
        ++out.retried;
        Pending p;
        p.index = index;
        p.attempt = used;
        // Exponential backoff: base << (retries already burned).
        p.eligibleNs = prof::Profiler::nowNs() +
                       (opts.backoffNs << (used - 1));
        pending.push_back(p);
    };

    while (!pending.empty() || !running.empty()) {
        const std::uint64_t now = prof::Profiler::nowNs();

        // Launch eligible work into free slots.
        for (std::size_t i = 0;
             running.size() < workers && i < pending.size();) {
            if (pending[i].eligibleNs > now) {
                ++i;
                continue;
            }
            const Pending job = pending[i];
            pending.erase(pending.begin() +
                          static_cast<std::ptrdiff_t>(i));
            // Unflushed stdio would be duplicated into every child.
            std::fflush(stdout);
            std::fflush(stderr);
            const pid_t pid = ::fork();
            if (pid == 0) {
                // _Exit: no atexit handlers, no double-flushed
                // buffers, no parent-owned state teardown.
                std::_Exit(fn(job.index, job.attempt));
            }
            if (pid < 0) {
                fail(job.index, job.attempt);
                continue;
            }
            Running r;
            r.pid = pid;
            r.index = job.index;
            r.attempt = job.attempt;
            r.startNs = prof::Profiler::nowNs();
            running.push_back(r);
        }

        // Kill anything over its wall budget; it is reaped below as a
        // signaled (failed) attempt.
        if (opts.timeoutNs != 0) {
            for (Running &r : running) {
                if (!r.killed && now - r.startNs > opts.timeoutNs) {
                    ::kill(r.pid, SIGKILL);
                    r.killed = true;
                }
            }
        }

        // Reap every finished child without blocking.
        bool reaped = false;
        for (;;) {
            int status = 0;
            const pid_t pid = ::waitpid(-1, &status, WNOHANG);
            if (pid <= 0)
                break;
            auto it = std::find_if(
                running.begin(), running.end(),
                [pid](const Running &r) { return r.pid == pid; });
            if (it == running.end())
                continue; // not ours (paranoia)
            const Running done = *it;
            running.erase(it);
            reaped = true;
            if (WIFEXITED(status) && WEXITSTATUS(status) == 0)
                ++out.succeeded;
            else
                fail(done.index, done.attempt);
        }

        if (!reaped && !running.empty())
            ::poll(nullptr, 0, 2);
        else if (!reaped && !pending.empty())
            ::poll(nullptr, 0, 1); // everyone is in backoff
    }
    return out;
}

} // namespace ultra::sweep
