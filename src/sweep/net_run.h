/**
 * @file
 * The shared synthetic-traffic experiment core (ultra::sweep).
 *
 * `ultrasim net`, the `ultrasweep` worker processes and the
 * `ultrasim serve` job loop all answer the same question -- "run this
 * network configuration under this workload and dump the stats" -- and
 * the golden byte-identity contract requires all three to answer it
 * with the *same bytes*.  Before this file each entry point would have
 * had to replicate the construction order, the warmup/reset/measure
 * sequence and the model cross-check wiring of `cmdNet` by hand;
 * NetExperiment extracts that sequence once so equivalence holds by
 * construction rather than by vigilance.
 *
 * Construction order (memory, network, hash, PNI, traffic, stats
 * registration, latency observatory) and the run loop (inspector
 * fence, sharded injection, PNI tick, network tick, sampler) are
 * verbatim the historical cmdNet sequence; the observability hooks
 * (inspector, sampler, event trace, profiler) are all optional and all
 * byte-neutral, so a hookless sweep worker and a fully-instrumented
 * interactive run produce identical --stats-json output.
 *
 * WarmRig is the server's "warmed machine configuration" cache entry:
 * a freshly constructed (memory, network) pair for a configuration,
 * built ahead of time because network construction is pure setup cost.
 * A rig is never reused after carrying traffic -- the cache hands out
 * pristine rigs only -- which is what keeps a cache hit byte-identical
 * to a cold build.
 */

#ifndef ULTRA_SWEEP_NET_RUN_H
#define ULTRA_SWEEP_NET_RUN_H

#include <functional>
#include <memory>
#include <string>

#include "analytic/config.h"
#include "analytic/drift.h"
#include "common/types.h"
#include "mem/address_hash.h"
#include "mem/memory_system.h"
#include "net/network.h"
#include "net/pni.h"
#include "net/traffic.h"
#include "obs/model_check.h"
#include "obs/registry.h"

namespace ultra::obs
{
class EventTrace;
class LatencyObservatory;
class Sampler;
} // namespace ultra::obs

namespace ultra::prof
{
class Profiler;
} // namespace ultra::prof

namespace ultra::par
{
class TickEngine;
} // namespace ultra::par

namespace ultra::sweep
{

/** One fully-resolved net-mode experiment point: everything that
 *  affects the simulated outcome, nothing that is host-side
 *  observability.  Defaults mirror the `ultrasim net` flag defaults. */
struct NetPointSpec
{
    net::NetSimConfig net;
    net::TrafficConfig traffic;
    net::PniConfig pni;
    Cycle cycles = 10000;
    unsigned threads = 1;  //!< --threads request (0 = all cores)
    bool netSerial = false;
    bool wantLatency = false;
    double driftTolerance = analytic::kDefaultDriftTolerance;
};

/** Headline metrics of a finished run, for sweep records and reports;
 *  everything here is derived from simulated state, so the values are
 *  deterministic per point. */
struct NetRunSummary
{
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    std::uint64_t combined = 0;
    std::uint64_t killed = 0;
    std::uint64_t mmServed = 0;
    double offered = 0.0;      //!< injected / cycles / ports
    double opsPerCycle = 0.0;  //!< delivered / cycles
    double combinedFraction = 0.0;
    double oneWayMean = 0.0;
    double oneWayMax = 0.0;
    double roundTripMean = 0.0;
    std::uint64_t rtP50 = 0;
    std::uint64_t rtP95 = 0;
    std::uint64_t rtP99 = 0;
    double accessMean = 0.0;
    double mmQueueWaitMean = 0.0;
    bool modelApplicable = false;
    bool modelOk = true;
    double predictedTransit = 0.0;
    double measuredTransit = 0.0;
    double drift = 0.0;
    // Latency-observatory analytics; valid when wantLatency was set.
    bool hasLatency = false;
    std::uint64_t latDelivered = 0;
    std::uint64_t latCombinedDelivered = 0;
    std::uint64_t latMmCyclesSaved = 0;
    std::uint64_t latViolations = 0;
    std::uint64_t fanInP50 = 1;
    std::uint64_t fanInMax = 1;

    /** The summary as a sorted-key JSON object (one line). */
    std::string json() const;
};

/** A pre-built, never-used (memory, network) pair for one network
 *  configuration; see the file comment. */
struct WarmRig
{
    std::unique_ptr<mem::MemorySystem> memory;
    std::unique_ptr<net::Network> network;
};

/** Build a pristine rig for @p cfg (the cache-refill path). */
WarmRig buildWarmRig(const net::NetSimConfig &cfg);

/** Canonical cache key: every field that shapes rig construction. */
std::string netConfigKey(const net::NetSimConfig &cfg);

/** One net-mode experiment, construction through stats dump. */
class NetExperiment
{
  public:
    /** Byte-neutral observability hooks; every field optional. */
    struct Hooks
    {
        /** Inspector pause fence, called between ticks. */
        std::function<void(Cycle)> atCycle;
        obs::Sampler *sampler = nullptr;
        Cycle sampleEvery = 0;
        obs::EventTrace *trace = nullptr;
        prof::Profiler *prof = nullptr;
        /** External engine to reuse (serve); adopted only when its
         *  thread count matches the resolved request. */
        par::TickEngine *engine = nullptr;
    };

    /** Construct the rig; @p warm (when its configuration matches) is
     *  adopted instead of building memory + network from scratch. */
    explicit NetExperiment(const NetPointSpec &spec,
                           WarmRig warm = WarmRig{});
    ~NetExperiment();

    NetExperiment(const NetExperiment &) = delete;
    NetExperiment &operator=(const NetExperiment &) = delete;

    // -- pre-run accessors (inspector targets, sampler setup) -------
    net::Network &network() { return *network_; }
    mem::MemorySystem &memory() { return *memory_; }
    mem::AddressHash &addressHash() { return *hash_; }
    net::PniArray &pni() { return *pni_; }
    obs::Registry &registry() { return registry_; }
    obs::LatencyObservatory *latency() { return latency_.get(); }
    const NetPointSpec &spec() const { return spec_; }

    /** Whether the Kruskal-Snir model's assumptions hold here. */
    bool modelApplicable() const { return applicable_; }
    const analytic::NetworkConfig &modelConfig() const { return acfg_; }

    /** Cycle at which post-warmup stats were reset (0 before run). */
    Cycle statsResetAt() const { return statsResetAt_; }

    /** Warmup (cycles/5), stats reset, measured run, model check. */
    void run(const Hooks &hooks);

    // -- post-run results -------------------------------------------
    const obs::ModelCrossCheck &model() const { return *model_; }
    bool modelOk() const { return modelOk_; }
    std::string statsJson(const obs::DumpOptions &opts) const;
    NetRunSummary summary() const;

  private:
    NetPointSpec spec_;
    std::unique_ptr<mem::MemorySystem> memory_;
    std::unique_ptr<net::Network> network_;
    std::unique_ptr<mem::AddressHash> hash_;
    std::unique_ptr<net::PniArray> pni_;
    std::unique_ptr<net::TrafficGenerator> traffic_;
    obs::Registry registry_;
    std::unique_ptr<obs::LatencyObservatory> latency_;
    analytic::NetworkConfig acfg_;
    bool applicable_ = false;
    Cycle statsResetAt_ = 0;
    std::unique_ptr<obs::ModelCrossCheck> model_;
    bool modelOk_ = true;
    bool ran_ = false;
};

} // namespace ultra::sweep

#endif // ULTRA_SWEEP_NET_RUN_H
