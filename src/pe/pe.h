/**
 * @file
 * The processing-element model (section 3.5).
 *
 * The PE is a register-machine of the CDC-6600 flavour the paper
 * simulated: most instructions are register-to-register, a fraction
 * reference memory.  Private data and program text hit the local cache
 * (section 3.2) and cost one instruction; shared data goes to central
 * memory through the PNI and network.
 *
 * To fully utilize the network a PE continues executing after issuing a
 * fetch: the target register is "locked" until the value returns and an
 * attempt to use it suspends execution.  This is modeled by the
 * LoadHandle: Pe::startOp() issues the request and returns a handle the
 * program co_awaits later; awaiting an unfilled handle blocks the
 * context (and accrues idle cycles), awaiting a filled one is free.
 *
 * Hardware multiprogramming (section 3.5): "if the latency remains an
 * impediment to performance, we would hardware-multiprogram the PEs
 * ... k-fold multiprogramming is equivalent to using k times as many
 * PEs -- each having relative performance 1/k."  A Pe holds one or
 * more *contexts*, each an independent Task; all contexts share the
 * instruction pipeline (only one executes at a time, and its
 * instructions occupy the pipeline for their full duration), but when
 * one context blocks on memory another ready context runs, recovering
 * waiting time.  PeStats::idleCycles counts per-context waiting, so
 * with multiprogramming the PE's *pipeline* idle time is smaller than
 * the contexts' summed waiting time -- exactly the recovery Table 3
 * projects.
 *
 * Simulated-time accounting:
 *   compute(n)       -- n register instructions: n * instrTime cycles.
 *   privateRefs(n)   -- n cache-hit data references: same cost, also
 *                       counted as memory references for Table 1.
 *   load/store/...   -- one instruction to issue, then the context
 *                       blocks until the reply; blocked time is idle.
 *   startOp + handle -- one instruction to issue, overlap until await.
 */

#ifndef ULTRA_PE_PE_H
#define ULTRA_PE_PE_H

#include <coroutine>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/cache.h"
#include "common/log.h"
#include "common/stats.h"
#include "common/types.h"
#include "net/pni.h"
#include "pe/task.h"

namespace ultra::obs
{
class EventTrace;
} // namespace ultra::obs

namespace ultra::pe
{

using net::Op;

/** PE timing parameters. */
struct PeConfig
{
    /** Cycles per instruction (the Table-1 setup uses 2). */
    Cycle instrTime = 2;
};

/** Per-PE counters backing Table 1. */
struct PeStats
{
    std::uint64_t instructions = 0; //!< includes memory instructions
    std::uint64_t sharedRefs = 0;   //!< central-memory references
    std::uint64_t sharedLoads = 0;  //!< the subset that are loads
    std::uint64_t privateRefs = 0;  //!< cache-hit data references
    std::uint64_t idleCycles = 0;   //!< per-context waiting on memory
    std::uint64_t busyCycles = 0;   //!< pipeline executing instructions
};

class Pe;

/** A locked-register handle for an in-flight operation. */
class LoadHandle
{
  public:
    LoadHandle() = default;

    bool valid() const { return slot_ != nullptr; }
    bool ready() const;

    /** Awaiting yields the operation's result (see Pe::startOp). */
    auto operator co_await();

  private:
    friend class Pe;
    struct Slot
    {
        bool done = false;
        Word value = 0;
    };
    LoadHandle(Pe *owner, std::shared_ptr<Slot> slot)
        : owner_(owner), slot_(std::move(slot))
    {}
    Pe *owner_ = nullptr;
    std::shared_ptr<Slot> slot_;
};

/** One simulated processing element (possibly multiprogrammed). */
class Pe
{
  public:
    Pe(PEId id, const PeConfig &cfg, net::PniArray &pni,
       net::Network &network);

    Pe(const Pe &) = delete;
    Pe &operator=(const Pe &) = delete;
    Pe(Pe &&) = delete;

    PEId id() const { return id_; }

    // --- awaitable factories (used inside Task coroutines) -----------

    /** Blocking fetch of a shared word. */
    auto load(Addr vaddr) { return MemAwait{*this, Op::Load, vaddr, 0}; }

    /** Blocking store (waits for the acknowledgement). */
    auto
    store(Addr vaddr, Word value)
    {
        return MemAwait{*this, Op::Store, vaddr, value};
    }

    /** Blocking fetch-and-add. */
    auto
    fetchAdd(Addr vaddr, Word delta)
    {
        return MemAwait{*this, Op::FetchAdd, vaddr, delta};
    }

    /** Blocking swap (fetch-and-pi2). */
    auto
    swap(Addr vaddr, Word value)
    {
        return MemAwait{*this, Op::Swap, vaddr, value};
    }

    /** Blocking test-and-set. */
    auto
    testAndSet(Addr vaddr)
    {
        return MemAwait{*this, Op::TestAndSet, vaddr, 0};
    }

    /** Blocking generic fetch-and-phi. */
    auto
    fetchPhi(Op op, Addr vaddr, Word operand)
    {
        return MemAwait{*this, op, vaddr, operand};
    }

    /** n register-to-register instructions. */
    auto compute(std::uint64_t n) { return ComputeAwait{*this, n, 0}; }

    /** n private (cache-hit) data references. */
    auto privateRefs(std::uint64_t n) { return ComputeAwait{*this, n, n}; }

    /**
     * Issue an operation without blocking (prefetch / pipelined store);
     * costs one instruction.  The returned handle is co_awaited later
     * for the result; fence() awaits all of them.
     */
    LoadHandle startOp(Op op, Addr vaddr, Word data = 0);
    LoadHandle startLoad(Addr vaddr) { return startOp(Op::Load, vaddr); }
    void postStore(Addr vaddr, Word value);

    /** Await completion of every outstanding startOp/postStore issued
     *  by the calling context. */
    auto fence() { return FenceAwait{*this}; }

    // --- cached local memory (sections 3.2, 3.4) ----------------------
    //
    // The local memory implemented as a cache: private variables and
    // read-only shared data may live here; caching read-write shared
    // data violates the serialization principle unless the share /
    // re-privatize protocol of section 3.4 (flush + release) is
    // followed.  Hits cost one instruction; misses fetch the whole
    // block from central memory and pipeline any write-backs.

    /** Give this PE a local cache (call before launching a program). */
    void attachCache(const cache::CacheConfig &cfg);
    bool hasCache() const { return cache_ != nullptr; }
    cache::Cache &cache();

    /** Read @p vaddr through the cache; *out receives the value. */
    Task cachedLoad(Addr vaddr, Word *out);

    /** Write @p value to @p vaddr through the cache (write-back:
     *  central memory is not updated until eviction or flush). */
    Task cachedStore(Addr vaddr, Word value);

    /** Force write-back of dirty cached words in [lo, hi] ("flush");
     *  the stores are pipelined and fenced. */
    Task cacheFlush(Addr lo, Addr hi);

    /** Drop cached entries in [lo, hi] without write-back ("release"). */
    void cacheRelease(Addr lo, Addr hi);

    // --- machine-facing interface -------------------------------------

    /** Bind the (single) program this PE runs, dropping any others. */
    void setTask(Task task);

    /** Add a further multiprogrammed context (section 3.5). */
    void addTask(Task task);

    bool hasTask() const;
    std::size_t numContexts() const { return contexts_.size(); }

    /** True when every context finished and all requests completed. */
    bool finished() const;

    /** True when some context can execute at @p now. */
    bool runnable(Cycle now) const;

    /** Resume one ready context until its next suspension. */
    void step(Cycle now);

    /** PNI completion dispatched by the machine. */
    void onComplete(std::uint64_t ticket, Word value);

    /**
     * Account waiting time accrued up to @p now by still-blocked
     * contexts: credits idleCycles and emits the pending trace "wait"
     * spans, then restarts the wait clocks at @p now.  Called by
     * Machine::run() when a run ends (notably on max_cycles timeout) so
     * stats and traces cover the whole run; totals are unchanged if the
     * run later resumes and the waits complete.
     */
    void flushWaits(Cycle now);

    const PeStats &stats() const { return stats_; }

    void
    resetStats()
    {
        stats_ = PeStats{};
        waitHist_.reset();
    }

    /** Distribution of completed per-context memory-wait spans, in
     *  cycles (same spans unblock() credits to idleCycles). */
    const Histogram &waitHist() const { return waitHist_; }

    /** Attach an event trace (nullptr detaches); @p track is the trace
     *  track to emit per-context "wait" spans on (tid = PE id). */
    void
    setEventTrace(obs::EventTrace *trace, std::uint32_t track)
    {
        trace_ = trace;
        traceTrack_ = track;
    }

  private:
    enum class State { Ready, BlockedMem, BlockedHandle, BlockedFence };

    friend class LoadHandle;

    /** One hardware context: task, continuation point, block state. */
    struct Context
    {
        Task task;
        /** Innermost suspended frame of the nested task chain. */
        std::coroutine_handle<> current;
        State state = State::Ready;
        Cycle readyAt = 0;
        Cycle blockStart = 0;
        std::uint64_t blockingTicket = 0;
        Word blockingValue = 0;
        std::shared_ptr<LoadHandle::Slot> awaitedSlot;
        std::uint64_t pendingAsync = 0;
    };

    struct MemAwait
    {
        Pe &pe;
        Op op;
        Addr vaddr;
        Word data;
        bool await_ready() const { return false; }
        void
        await_suspend(std::coroutine_handle<> h)
        {
            pe.runningCtx().current = h;
            pe.issueBlocking(op, vaddr, data);
        }
        Word
        await_resume() const
        {
            return pe.runningCtx().blockingValue;
        }
    };

    struct ComputeAwait
    {
        Pe &pe;
        std::uint64_t instructions;
        std::uint64_t private_refs;
        bool await_ready() const { return false; }
        void
        await_suspend(std::coroutine_handle<> h)
        {
            pe.runningCtx().current = h;
            pe.chargeCompute(instructions, private_refs);
        }
        void await_resume() const {}
    };

    struct HandleAwait
    {
        Pe &pe;
        std::shared_ptr<LoadHandle::Slot> slot;
        bool await_ready() const { return slot->done; }
        void
        await_suspend(std::coroutine_handle<> h)
        {
            pe.runningCtx().current = h;
            pe.blockOnHandle(slot);
        }
        Word await_resume() const { return slot->value; }
    };

    struct FenceAwait
    {
        Pe &pe;
        bool
        await_ready() const
        {
            return pe.runningCtx().pendingAsync == 0;
        }
        void
        await_suspend(std::coroutine_handle<> h)
        {
            pe.runningCtx().current = h;
            pe.blockOnFence();
        }
        void await_resume() const {}
    };

    Context &runningCtx() { return contexts_[running_]; }
    const Context &runningCtx() const { return contexts_[running_]; }

    void issueBlocking(Op op, Addr vaddr, Word data);
    void chargeCompute(std::uint64_t instructions,
                       std::uint64_t private_refs);
    void blockOnHandle(std::shared_ptr<LoadHandle::Slot> slot);
    void blockOnFence();
    void unblock(Context &ctx, Cycle earliest);
    bool contextRunnable(const Context &ctx, Cycle now) const;

    /** Fetch and install the block containing @p vaddr; pipelines the
     *  victim's write-backs. */
    Task fillCacheBlock(Addr vaddr);

    PEId id_;
    PeConfig cfg_;
    net::PniArray &pni_;
    net::Network &network_;

    std::vector<Context> contexts_;
    std::size_t running_ = 0;  //!< context currently on the pipeline
    std::size_t nextCtx_ = 0;  //!< round-robin scheduling cursor
    Cycle peClock_ = 0;        //!< pipeline clock within a resumption
    Cycle peFreeAt_ = 0;       //!< when the pipeline frees up

    /** ticket -> issuing context (for completion routing). */
    std::unordered_map<std::uint64_t, std::size_t> ticketCtx_;
    /** ticket -> handle slot for startOp results. */
    std::unordered_map<std::uint64_t, std::shared_ptr<LoadHandle::Slot>>
        inFlight_;

    std::unique_ptr<cache::Cache> cache_;

    PeStats stats_;
    Histogram waitHist_{2, 128};

    obs::EventTrace *trace_ = nullptr;
    std::uint32_t traceTrack_ = 0;
};

inline bool
LoadHandle::ready() const
{
    return slot_ && slot_->done;
}

inline auto
LoadHandle::operator co_await()
{
    // The handle's Pe is implicit: handles are created by startOp on the
    // same PE whose coroutine awaits them (checked by the machine tests).
    ULTRA_ASSERT(slot_ != nullptr, "awaiting an empty LoadHandle");
    return Pe::HandleAwait{*owner_, slot_};
}

} // namespace ultra::pe

#endif // ULTRA_PE_PE_H
