#include "pe.h"

#include <algorithm>
#include <vector>

#include "check/phase_check.h"
#include "common/log.h"
#include "obs/event_trace.h"

namespace ultra::pe
{

Pe::Pe(PEId id, const PeConfig &cfg, net::PniArray &pni,
       net::Network &network)
    : id_(id), cfg_(cfg), pni_(pni), network_(network)
{
    ULTRA_ASSERT(cfg.instrTime >= 1);
}

void
Pe::setTask(Task task)
{
    contexts_.clear();
    ticketCtx_.clear();
    inFlight_.clear();
    running_ = 0;
    nextCtx_ = 0;
    if (task.valid())
        addTask(std::move(task));
}

void
Pe::addTask(Task task)
{
    ULTRA_ASSERT(task.valid());
    Context ctx;
    ctx.current = task.handle();
    ctx.task = std::move(task);
    contexts_.push_back(std::move(ctx));
}

bool
Pe::hasTask() const
{
    return !contexts_.empty();
}

bool
Pe::finished() const
{
    if (contexts_.empty())
        return false;
    for (const Context &ctx : contexts_) {
        if (!ctx.task.done() || ctx.pendingAsync != 0)
            return false;
    }
    return true;
}

bool
Pe::contextRunnable(const Context &ctx, Cycle now) const
{
    return ctx.task.valid() && !ctx.task.done() &&
           ctx.state == State::Ready && ctx.readyAt <= now;
}

bool
Pe::runnable(Cycle now) const
{
    if (peFreeAt_ > now)
        return false; // the pipeline is still executing instructions
    for (const Context &ctx : contexts_) {
        if (contextRunnable(ctx, now))
            return true;
    }
    return false;
}

void
Pe::step(Cycle now)
{
    // The PE's coroutine frames, stats and clocks are shard-owned.
    ULTRA_CHECK_COMPUTE_WRITE("pe.step", id_);
    ULTRA_ASSERT(runnable(now));
    // Round-robin among ready contexts so multiprogrammed tasks share
    // the pipeline fairly.
    const std::size_t n = contexts_.size();
    std::size_t pick = n;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t idx = (nextCtx_ + i) % n;
        if (contextRunnable(contexts_[idx], now)) {
            pick = idx;
            break;
        }
    }
    ULTRA_ASSERT(pick < n);
    running_ = pick;
    nextCtx_ = (pick + 1) % n;
    peClock_ = now;
    Context &ctx = contexts_[pick];
    ctx.current.resume();
    ctx.task.rethrowIfFailed();
}

void
Pe::chargeCompute(std::uint64_t instructions, std::uint64_t private_refs)
{
    stats_.instructions += instructions;
    stats_.privateRefs += private_refs;
    stats_.busyCycles += instructions * cfg_.instrTime;
    peClock_ += instructions * cfg_.instrTime;
    peFreeAt_ = peClock_;
    Context &ctx = runningCtx();
    // Guarantee forward progress even for compute(0).
    ctx.readyAt = instructions == 0 ? peClock_ + 1 : peClock_;
    ctx.state = State::Ready;
}

void
Pe::issueBlocking(Op op, Addr vaddr, Word data)
{
    ++stats_.instructions;
    ++stats_.sharedRefs;
    stats_.sharedLoads += op == Op::Load ? 1 : 0;
    stats_.busyCycles += cfg_.instrTime;
    peClock_ += cfg_.instrTime;
    peFreeAt_ = peClock_;
    Context &ctx = runningCtx();
    ctx.blockingTicket = pni_.request(id_, op, vaddr, data);
    ticketCtx_.emplace(ctx.blockingTicket, running_);
    ctx.blockStart = peClock_;
    ctx.state = State::BlockedMem;
}

LoadHandle
Pe::startOp(Op op, Addr vaddr, Word data)
{
    ++stats_.instructions;
    ++stats_.sharedRefs;
    stats_.sharedLoads += op == Op::Load ? 1 : 0;
    stats_.busyCycles += cfg_.instrTime;
    peClock_ += cfg_.instrTime;
    peFreeAt_ = peClock_;
    auto slot = std::make_shared<LoadHandle::Slot>();
    const std::uint64_t ticket = pni_.request(id_, op, vaddr, data);
    ticketCtx_.emplace(ticket, running_);
    inFlight_.emplace(ticket, slot);
    ++runningCtx().pendingAsync;
    return LoadHandle(this, slot);
}

void
Pe::postStore(Addr vaddr, Word value)
{
    (void)startOp(Op::Store, vaddr, value);
}

void
Pe::blockOnHandle(std::shared_ptr<LoadHandle::Slot> slot)
{
    Context &ctx = runningCtx();
    ctx.awaitedSlot = std::move(slot);
    ctx.blockStart = peClock_;
    ctx.state = State::BlockedHandle;
    peFreeAt_ = peClock_;
}

void
Pe::blockOnFence()
{
    Context &ctx = runningCtx();
    ctx.blockStart = peClock_;
    ctx.state = State::BlockedFence;
    peFreeAt_ = peClock_;
}

void
Pe::unblock(Context &ctx, Cycle earliest)
{
    ctx.readyAt = std::max(earliest, ctx.blockStart);
    stats_.idleCycles += ctx.readyAt - ctx.blockStart;
    waitHist_.add(ctx.readyAt - ctx.blockStart);
    if (trace_ && ctx.readyAt > ctx.blockStart) {
        trace_->complete(traceTrack_, id_, "wait", ctx.blockStart,
                         ctx.readyAt - ctx.blockStart);
    }
    ctx.state = State::Ready;
}

void
Pe::onComplete(std::uint64_t ticket, Word value)
{
    ULTRA_CHECK_COMMIT_ONLY("pe.complete");
    const Cycle now = network_.now();
    auto owner = ticketCtx_.find(ticket);
    ULTRA_ASSERT(owner != ticketCtx_.end(),
                 "completion for unknown ticket ", ticket, " at PE ",
                 id_);
    Context &ctx = contexts_[owner->second];
    ticketCtx_.erase(owner);

    if (ctx.state == State::BlockedMem && ticket == ctx.blockingTicket) {
        ctx.blockingValue = value;
        unblock(ctx, now);
        return;
    }
    auto it = inFlight_.find(ticket);
    ULTRA_ASSERT(it != inFlight_.end(),
                 "completion for unknown async ticket ", ticket,
                 " at PE ", id_);
    it->second->done = true;
    it->second->value = value;
    const bool was_awaited = ctx.state == State::BlockedHandle &&
                             ctx.awaitedSlot == it->second;
    inFlight_.erase(it);
    ULTRA_ASSERT(ctx.pendingAsync > 0);
    --ctx.pendingAsync;
    if (was_awaited) {
        ctx.awaitedSlot.reset();
        unblock(ctx, now);
    } else if (ctx.state == State::BlockedFence && ctx.pendingAsync == 0) {
        unblock(ctx, now);
    }
}

void
Pe::flushWaits(Cycle now)
{
    ULTRA_CHECK_COMMIT_ONLY("pe.flush_waits");
    for (Context &ctx : contexts_) {
        if (ctx.state == State::Ready || ctx.blockStart >= now)
            continue;
        stats_.idleCycles += now - ctx.blockStart;
        waitHist_.add(now - ctx.blockStart);
        if (trace_) {
            trace_->complete(traceTrack_, id_, "wait", ctx.blockStart,
                             now - ctx.blockStart);
        }
        ctx.blockStart = now;
    }
}

// --------------------------------------------------------------------
// Cached local memory (sections 3.2, 3.4)
// --------------------------------------------------------------------

void
Pe::attachCache(const cache::CacheConfig &cfg)
{
    cache_ = std::make_unique<cache::Cache>(cfg);
}

cache::Cache &
Pe::cache()
{
    ULTRA_ASSERT(cache_ != nullptr, "PE ", id_, " has no cache "
                 "attached");
    return *cache_;
}

Task
Pe::fillCacheBlock(Addr vaddr)
{
    const std::uint32_t block_words = cache_->config().blockWords;
    const Addr base = vaddr & ~static_cast<Addr>(block_words - 1);
    // Fetch the whole block with pipelined (locked-register) loads.
    std::vector<LoadHandle> handles;
    handles.reserve(block_words);
    for (std::uint32_t w = 0; w < block_words; ++w)
        handles.push_back(startLoad(base + w));
    std::vector<Word> words(block_words);
    for (std::uint32_t w = 0; w < block_words; ++w)
        words[w] = co_await handles[w];
    cache_->installBlock(base, words.data());
}

Task
Pe::cachedLoad(Addr vaddr, Word *out)
{
    ULTRA_ASSERT(cache_ != nullptr, "PE ", id_, " has no cache");
    auto probe = cache_->read(vaddr);
    if (probe.hit) {
        // A cache hit costs one instruction, like a register reference.
        co_await privateRefs(1);
        *out = probe.value;
        co_return;
    }
    // Miss: write back the victim's dirty words (pipelined -- "cache
    // generated traffic can always be pipelined"), fetch the block.
    for (const auto &wb : probe.writeBacks)
        postStore(wb.vaddr, wb.value);
    co_await fillCacheBlock(vaddr);
    Word filled = 0;
    const bool landed = cache_->probe(vaddr, &filled);
    ULTRA_ASSERT(landed, "fill did not land");
    *out = filled;
}

Task
Pe::cachedStore(Addr vaddr, Word value)
{
    ULTRA_ASSERT(cache_ != nullptr, "PE ", id_, " has no cache");
    auto probe = cache_->write(vaddr, value);
    if (probe.hit) {
        co_await privateRefs(1);
        co_return;
    }
    // Write-allocate: fetch the block, then the write hits.
    for (const auto &wb : probe.writeBacks)
        postStore(wb.vaddr, wb.value);
    co_await fillCacheBlock(vaddr);
    auto again = cache_->write(vaddr, value);
    ULTRA_ASSERT(again.hit, "fill did not land");
    co_await privateRefs(1);
}

Task
Pe::cacheFlush(Addr lo, Addr hi)
{
    ULTRA_ASSERT(cache_ != nullptr, "PE ", id_, " has no cache");
    const auto dirty = cache_->flush(lo, hi);
    for (const auto &wb : dirty)
        postStore(wb.vaddr, wb.value);
    co_await fence();
}

void
Pe::cacheRelease(Addr lo, Addr hi)
{
    cache_->release(lo, hi);
}

} // namespace ultra::pe
