/**
 * @file
 * The coroutine task type executed by simulated PEs.
 *
 * A parallel program for the simulated machine is an ordinary C++
 * coroutine of type Task that co_awaits the memory and compute
 * operations offered by the Pe class.  Between awaits the C++ code runs
 * in zero simulated time; every await is a scheduling point where the
 * PE's clock advances.
 *
 * Tasks compose: a Task may co_await another Task (a "subroutine"), so
 * the coordination algorithms of the appendix (queue insert/delete,
 * readers-writers, barriers) are reusable building blocks.  The inner
 * task starts by symmetric transfer and resumes its awaiter when it
 * finishes; while any frame in the chain suspends on a Pe awaitable,
 * the Pe records that innermost handle and resumes it directly.
 *
 * COMPILER NOTE (GCC 12): g++ 12.x miscompiles coroutines that place a
 * co_await expression directly inside an if/while *condition* in some
 * surrounding-code shapes (the state machine resumes at the wrong
 * point; verified with a minimal reproducer during development).
 * Throughout this repository -- and in code you write against this
 * library -- hoist every co_await into its own statement and bind its
 * result to a local:
 *
 *     // BAD  (silently corrupts on GCC 12):
 *     while (co_await pe.load(flag) != 0) { ... }
 *     // GOOD:
 *     while (true) {
 *         const Word f = co_await pe.load(flag);
 *         if (f == 0) break;
 *         ...
 *     }
 *
 * Passing small descriptor structs to Task coroutines by value (not by
 * reference) also sidesteps any frame-lifetime questions.
 */

#ifndef ULTRA_PE_TASK_H
#define ULTRA_PE_TASK_H

#include <coroutine>
#include <exception>
#include <utility>

namespace ultra::pe
{

/** Coroutine handle owner for one PE program (or subroutine). */
class Task
{
  public:
    struct promise_type
    {
        std::exception_ptr exception;
        std::coroutine_handle<> continuation;

        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }
        /** Start suspended; the machine (or awaiter) starts the task. */
        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }
            std::coroutine_handle<>
            await_suspend(
                std::coroutine_handle<promise_type> h) noexcept
            {
                // Resume whoever awaited this task; a top-level task has
                // no continuation and simply parks as done().
                if (h.promise().continuation)
                    return h.promise().continuation;
                return std::noop_coroutine();
            }
            void await_resume() noexcept {}
        };
        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() noexcept {}
        void
        unhandled_exception() noexcept
        {
            exception = std::current_exception();
        }
    };

    Task() = default;
    explicit Task(std::coroutine_handle<promise_type> handle)
        : handle_(handle)
    {}

    Task(Task &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    bool valid() const { return static_cast<bool>(handle_); }
    bool done() const { return handle_ && handle_.done(); }

    std::coroutine_handle<promise_type> handle() const { return handle_; }

    /** Rethrow the task's escaped exception, if any (once done). */
    void
    rethrowIfFailed() const
    {
        if (handle_ && handle_.done() && handle_.promise().exception)
            std::rethrow_exception(handle_.promise().exception);
    }

    /** Awaiting a Task runs it to completion as a subroutine. */
    struct Awaiter
    {
        std::coroutine_handle<promise_type> inner;
        bool await_ready() const noexcept { return !inner || inner.done(); }
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<> outer) noexcept
        {
            inner.promise().continuation = outer;
            return inner; // symmetric transfer: start the subroutine
        }
        void
        await_resume() const
        {
            if (inner && inner.promise().exception)
                std::rethrow_exception(inner.promise().exception);
        }
    };

    Awaiter operator co_await() const noexcept { return Awaiter{handle_}; }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_;
};

} // namespace ultra::pe

#endif // ULTRA_PE_TASK_H
